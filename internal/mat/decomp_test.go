package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randSPD returns a random symmetric positive definite matrix AᵀA + n·I.
func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	ata, _ := Mul(a.T(), a)
	for i := 0; i < n; i++ {
		ata.Set(i, i, ata.At(i, i)+float64(n))
	}
	return ata
}

func residual(a *Dense, x, b []float64) float64 {
	ax, _ := MulVec(a, x)
	return NormInf(SubVec(ax, b))
}

func TestLUSolveKnown(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	x, err := SolveLU(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Solution of [2 1;1 3] x = [3;5] is x = [0.8, 1.4].
	if !VecEqual(x, []float64{0.8, 1.4}, 1e-14) {
		t.Fatalf("SolveLU = %v", x)
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // keep well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := residual(a, x, b); r > 1e-9 {
			t.Fatalf("trial %d: residual %g too large", trial, r)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewLU(NewDense(2, 3)); !errors.Is(err, ErrSquare) {
		t.Fatalf("want ErrSquare, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{3, 1, 4, 2})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-2) > 1e-13 {
		t.Fatalf("Det = %v, want 2", d)
	}
}

func TestLUDetPermutationSign(t *testing.T) {
	// A matrix that forces a row swap: det([[0,1],[1,0]]) = -1.
	a, _ := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d+1) > 1e-14 {
		t.Fatalf("Det = %v, want -1", d)
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(rng, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := Mul(a, inv)
	if !prod.Equal(Eye(6), 1e-9) {
		t.Fatal("A A⁻¹ != I")
	}
}

func TestLUSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSPD(rng, 5)
	b := randDense(rng, 5, 3)
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := Mul(a, x)
	if !ax.Equal(b, 1e-9) {
		t.Fatal("A X != B")
	}
	if _, err := f.SolveMatrix(NewDense(4, 2)); err == nil {
		t.Fatal("SolveMatrix shape mismatch must error")
	}
}

func TestLUSolveShapeError(t *testing.T) {
	f, _ := NewLU(Eye(3))
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("Solve with wrong length must error")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// [[4,2],[2,3]] = L Lᵀ with L = [[2,0],[1,sqrt(2)]].
	a, _ := NewDenseData(2, 2, []float64{4, 2, 2, 3})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	if math.Abs(l.At(0, 0)-2) > 1e-15 || math.Abs(l.At(1, 0)-1) > 1e-15 ||
		math.Abs(l.At(1, 1)-math.Sqrt2) > 1e-15 || l.At(0, 1) != 0 {
		t.Fatalf("L = %v", l)
	}
}

func TestCholeskySolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x, err := c.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := residual(a, x, b); r > 1e-9 {
			t.Fatalf("trial %d: residual %g", trial, r)
		}
		// Cross-check against LU.
		xlu, err := SolveLU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqual(x, xlu, 1e-8) {
			t.Fatalf("trial %d: Cholesky and LU disagree", trial)
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randSPD(rng, 7)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	llt, _ := Mul(l, l.T())
	if !llt.Equal(a, 1e-9) {
		t.Fatal("L Lᵀ != A")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if _, err := NewCholesky(NewDense(2, 3)); !errors.Is(err, ErrSquare) {
		t.Fatalf("want ErrSquare, got %v", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{4, 0, 0, 9})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.LogDet(), math.Log(36); math.Abs(got-want) > 1e-13 {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randSPD(rng, 4)
	b := randDense(rng, 4, 2)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.SolveMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := Mul(a, x)
	if !ax.Equal(b, 1e-10) {
		t.Fatal("A X != B")
	}
}

func TestSolveSPDFallsBackToLU(t *testing.T) {
	// Symmetric indefinite but nonsingular: Cholesky fails, LU succeeds.
	a, _ := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	x, err := SolveSPD(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(x, []float64{3, 2}, 1e-14) {
		t.Fatalf("SolveSPD fallback = %v", x)
	}
}

func TestQRSolveExact(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r := residual(a, x, b); r > 1e-9 {
			t.Fatalf("trial %d: residual %g", trial, r)
		}
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2 + 3x with exact data; LS must recover coefficients.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewDense(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(coef, []float64{2, 3}, 1e-12) {
		t.Fatalf("coef = %v", coef)
	}
}

func TestQRLeastSquaresNoisyNormalEquations(t *testing.T) {
	// QR least-squares solution must satisfy the normal equations AᵀA x = Aᵀ b.
	rng := rand.New(rand.NewSource(16))
	a := randDense(rng, 12, 4)
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ata, _ := Mul(a.T(), a)
	atb, _ := MulTVec(a, b)
	lhs, _ := MulVec(ata, x)
	if !VecEqual(lhs, atb, 1e-9) {
		t.Fatal("QR solution violates normal equations")
	}
}

func TestQRShapeErrors(t *testing.T) {
	if _, err := NewQR(NewDense(2, 3)); err == nil {
		t.Fatal("m<n must error")
	}
	f, _ := NewQR(NewDense(3, 2))
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("wrong b length must error")
	}
}

func TestQRRankDeficient(t *testing.T) {
	a, _ := NewDenseData(3, 2, []float64{1, 2, 2, 4, 3, 6}) // col2 = 2*col1
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestQRRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randDense(rng, 6, 4)
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	for i := 1; i < 4; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R not upper triangular at (%d,%d)", i, j)
			}
		}
	}
}

func TestCond1Identity(t *testing.T) {
	c, err := Cond1(Eye(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("Cond1(I) = %v, want 1", c)
	}
}

func TestCond1Singular(t *testing.T) {
	a, _ := NewDenseData(2, 2, []float64{1, 1, 1, 1})
	if _, err := Cond1(a); err == nil {
		t.Fatal("Cond1 of singular matrix must error")
	}
}
