package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSVDKnownDiagonal(t *testing.T) {
	a := Diag([]float64{3, 1, 2})
	svd, err := NewSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(svd.Values, []float64{3, 2, 1}, 1e-12) {
		t.Fatalf("values = %v", svd.Values)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 5; trial++ {
		m := 4 + rng.Intn(8)
		n := 2 + rng.Intn(m-1)
		a := randDense(rng, m, n)
		svd, err := NewSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		// U Σ Vᵀ must reconstruct A.
		us, err := MulDiagRight(svd.U, svd.Values)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Mul(us, svd.V.T())
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Equal(a, 1e-9*math.Max(1, a.MaxAbs())) {
			t.Fatalf("trial %d: reconstruction failed", trial)
		}
		// U and V orthonormal.
		utu, _ := Mul(svd.U.T(), svd.U)
		if !utu.Equal(Eye(n), 1e-9) {
			t.Fatalf("trial %d: U columns not orthonormal", trial)
		}
		vtv, _ := Mul(svd.V.T(), svd.V)
		if !vtv.Equal(Eye(n), 1e-9) {
			t.Fatalf("trial %d: V not orthogonal", trial)
		}
		// Singular values nonnegative descending.
		for i := 1; i < n; i++ {
			if svd.Values[i] > svd.Values[i-1]+1e-12 || svd.Values[i] < 0 {
				t.Fatalf("trial %d: values not sorted: %v", trial, svd.Values)
			}
		}
	}
}

func TestSVDMatchesEigenOfGram(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	a := randDense(rng, 10, 4)
	svd, err := NewSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	ata, _ := Mul(a.T(), a)
	eig, err := NewEigenSym(ata, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues of AᵀA are squared singular values (ascending order).
	for i := 0; i < 4; i++ {
		want := math.Sqrt(math.Max(0, eig.Values[3-i]))
		if math.Abs(svd.Values[i]-want) > 1e-8*math.Max(1, want) {
			t.Fatalf("σ[%d] = %v, want %v", i, svd.Values[i], want)
		}
	}
}

func TestSVDShapeErrors(t *testing.T) {
	if _, err := NewSVD(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatal("wide matrix must error")
	}
	if _, err := NewSVD(NewDense(0, 0)); !errors.Is(err, ErrShape) {
		t.Fatal("empty must error")
	}
}

func TestSVDRankAndCond(t *testing.T) {
	// Rank-1 matrix.
	a := OuterProduct([]float64{1, 2, 3}, []float64{4, 5})
	svd, err := NewSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := svd.Rank(0); r != 1 {
		t.Fatalf("rank = %d, want 1", r)
	}
	// Rounding can leave σ₂ at ~1e-16 rather than exactly 0, so the
	// condition number is astronomically large rather than +Inf.
	if c := svd.Cond2(); !math.IsInf(c, 1) && c < 1e12 {
		t.Fatalf("cond = %v, want huge", c)
	}
	id, err := NewSVD(Eye(3))
	if err != nil {
		t.Fatal(err)
	}
	if id.Rank(0) != 3 || math.Abs(id.Cond2()-1) > 1e-12 {
		t.Fatalf("identity rank/cond wrong: %d, %v", id.Rank(0), id.Cond2())
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	svd, err := NewSVD(NewDense(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if svd.Rank(0) != 0 {
		t.Fatalf("zero matrix rank = %d", svd.Rank(0))
	}
	if !math.IsInf(svd.Cond2(), 1) {
		t.Fatal("zero matrix cond must be +Inf")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points along direction (1,1) with small orthogonal noise: the first
	// component must capture almost all variance.
	rng := rand.New(rand.NewSource(95))
	n := 200
	x := NewDense(n, 2)
	for i := 0; i < n; i++ {
		tv := rng.NormFloat64() * 3
		noise := rng.NormFloat64() * 0.1
		x.Set(i, 0, tv+noise)
		x.Set(i, 1, tv-noise)
	}
	scores, frac, err := PCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := scores.Dims(); r != n || c != 2 {
		t.Fatalf("scores dims (%d,%d)", r, c)
	}
	if frac[0] < 0.95 {
		t.Fatalf("first component variance fraction %v, want > 0.95", frac[0])
	}
	if frac[0]+frac[1] > 1+1e-9 {
		t.Fatal("variance fractions exceed 1")
	}
}

func TestPCAWideMatrix(t *testing.T) {
	// More columns than rows exercises the transpose path.
	rng := rand.New(rand.NewSource(97))
	x := randDense(rng, 5, 12)
	scores, frac, err := PCA(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := scores.Dims(); r != 5 || c != 3 {
		t.Fatalf("scores dims (%d,%d)", r, c)
	}
	if len(frac) != 3 {
		t.Fatalf("frac = %v", frac)
	}
}

func TestPCAValidation(t *testing.T) {
	x := NewDense(3, 2)
	if _, _, err := PCA(x, 0); !errors.Is(err, ErrShape) {
		t.Fatal("k=0 must error")
	}
	if _, _, err := PCA(x, 3); !errors.Is(err, ErrShape) {
		t.Fatal("k>d must error")
	}
	if _, _, err := PCA(NewDense(1, 2), 1); !errors.Is(err, ErrShape) {
		t.Fatal("n<2 must error")
	}
}

func TestPCACentersData(t *testing.T) {
	// Adding a constant offset to every row must not change the scores'
	// variance structure.
	rng := rand.New(rand.NewSource(99))
	x := randDense(rng, 40, 3)
	shifted := x.Clone()
	shifted.Apply(func(_, j int, v float64) float64 { return v + 100*float64(j+1) })
	_, f1, err := PCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := PCA(shifted, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if math.Abs(f1[i]-f2[i]) > 1e-9 {
			t.Fatalf("offset changed variance fractions: %v vs %v", f1, f2)
		}
	}
}
