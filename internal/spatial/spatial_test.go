package spatial

import (
	"math"
	"sort"
	"testing"

	"repro/internal/kernel"
	"repro/internal/randx"
)

// randomPoints draws n points in dimension d, snapped to a coarse lattice
// with probability ~1/2 so duplicate coordinates and exact distance ties
// occur routinely.
func randomPoints(seed int64, n, d int) [][]float64 {
	rng := randx.New(seed)
	x := make([][]float64, n)
	for i := range x {
		xi := make([]float64, d)
		for j := range xi {
			v := rng.Float64()*10 - 5
			if rng.Float64() < 0.5 {
				v = math.Round(v) // lattice point: exact ties across points
			}
			xi[j] = v
		}
		x[i] = xi
	}
	return x
}

// bruteRadius is the reference radius query: every index with d² <= r2,
// excluding self, ascending.
func bruteRadius(x [][]float64, q []float64, self int, r2 float64) []int32 {
	var out []int32
	for i, xi := range x {
		if i == self {
			continue
		}
		if kernel.Dist2(q, xi) <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

// bruteKNN is the reference k-NN query under the (d², index) total order.
func bruteKNN(x [][]float64, q []float64, self int, k int, maxD2 float64) []int32 {
	type cand struct {
		d2  float64
		idx int32
	}
	var cs []cand
	for i, xi := range x {
		if i == self {
			continue
		}
		d2 := kernel.Dist2(q, xi)
		if maxD2 >= 0 && d2 > maxD2 {
			continue
		}
		cs = append(cs, cand{d2, int32(i)})
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].d2 != cs[b].d2 {
			return cs[a].d2 < cs[b].d2
		}
		return cs[a].idx < cs[b].idx
	})
	if k > len(cs) {
		k = len(cs)
	}
	out := make([]int32, k)
	for i := range out {
		out[i] = cs[i].idx
	}
	sortInt32(out)
	return out
}

func sameInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCheckPoints(t *testing.T) {
	if _, err := checkPoints(nil); err != ErrEmpty {
		t.Fatalf("empty: got %v", err)
	}
	if _, err := checkPoints([][]float64{{}}); err != ErrParam {
		t.Fatalf("zero-dim: got %v", err)
	}
	if _, err := checkPoints([][]float64{{1, 2}, {3}}); err != ErrParam {
		t.Fatalf("ragged: got %v", err)
	}
	if d, err := checkPoints([][]float64{{1, 2}, {3, 4}}); err != nil || d != 2 {
		t.Fatalf("valid: got dim=%d err=%v", d, err)
	}
}

// TestGridCandidatesSuperset checks the core grid contract: with cell >=
// radius, Candidates covers every point within the radius, with no duplicate
// indices.
func TestGridCandidatesSuperset(t *testing.T) {
	cases := []struct {
		n, d int
		r    float64
	}{
		{1, 1, 0.5}, {17, 1, 1.0}, {200, 2, 0.8}, {200, 3, 1.5}, {64, 5, 2.0},
	}
	for _, tc := range cases {
		x := randomPoints(int64(tc.n*100+tc.d), tc.n, tc.d)
		g, err := NewGrid(x, tc.r*(1+1e-6))
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n || g.Dim() != tc.d {
			t.Fatalf("n=%d d=%d: accessors N=%d Dim=%d", tc.n, tc.d, g.N(), g.Dim())
		}
		r2 := tc.r * tc.r
		var buf []int32
		for i := range x {
			buf = g.Candidates(x[i], buf[:0])
			seen := make(map[int32]bool, len(buf))
			for _, j := range buf {
				if seen[j] {
					t.Fatalf("n=%d d=%d query %d: duplicate candidate %d", tc.n, tc.d, i, j)
				}
				seen[j] = true
			}
			for _, j := range bruteRadius(x, x[i], -1, r2) {
				if !seen[j] {
					t.Fatalf("n=%d d=%d query %d: in-radius point %d missing from candidates", tc.n, tc.d, i, j)
				}
			}
		}
	}
}

// TestGridDegenerate covers single-point, all-identical, and colinear sets.
func TestGridDegenerate(t *testing.T) {
	single := [][]float64{{3, 4}}
	g, err := NewGrid(single, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Candidates(single[0], nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single point: candidates %v", got)
	}

	identical := make([][]float64, 20)
	for i := range identical {
		identical[i] = []float64{1.5, -2.5, 0}
	}
	g, err = NewGrid(identical, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if g.CellCount() != 1 {
		t.Fatalf("identical points: %d cells, want 1", g.CellCount())
	}
	got := g.Candidates(identical[0], nil)
	if len(got) != 20 {
		t.Fatalf("identical points: %d candidates, want 20", len(got))
	}
	for i, j := range got {
		if j != int32(i) {
			t.Fatalf("identical points: candidates not in insertion order: %v", got)
		}
	}

	colinear := make([][]float64, 32)
	for i := range colinear {
		colinear[i] = []float64{float64(i) * 0.5, 0}
	}
	g, err = NewGrid(colinear, 1.0000001)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int32
	for i := range colinear {
		buf = g.Candidates(colinear[i], buf[:0])
		seen := make(map[int32]bool, len(buf))
		for _, j := range buf {
			seen[j] = true
		}
		for _, j := range bruteRadius(colinear, colinear[i], -1, 1) {
			if !seen[j] {
				t.Fatalf("colinear query %d: missing neighbour %d", i, j)
			}
		}
	}
}

func TestGridParams(t *testing.T) {
	x := [][]float64{{0}, {1}}
	for _, cell := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewGrid(x, cell); err == nil {
			t.Fatalf("cell=%v: expected error", cell)
		}
	}
}

// TestKDTreeKNNMatchesBrute compares KNN to brute-force (d², index)
// selection across sizes, dimensions, k, and ε pre-filters.
func TestKDTreeKNNMatchesBrute(t *testing.T) {
	cases := []struct {
		n, d, k int
		maxD2   float64
	}{
		{1, 2, 3, -1}, {30, 1, 5, -1}, {200, 2, 8, -1}, {200, 2, 8, 2.0},
		{300, 3, 1, -1}, {150, 8, 10, -1}, {100, 2, 150, -1}, {64, 4, 6, 0.5},
	}
	for _, tc := range cases {
		x := randomPoints(int64(tc.n*10+tc.d+tc.k), tc.n, tc.d)
		tr, err := NewKDTree(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr.N() != tc.n {
			t.Fatalf("N=%d want %d", tr.N(), tc.n)
		}
		var buf []int32
		for i := range x {
			buf = tr.KNN(x[i], int32(i), tc.k, tc.maxD2, buf[:0])
			want := bruteKNN(x, x[i], i, tc.k, tc.maxD2)
			if !sameInt32(buf, want) {
				t.Fatalf("n=%d d=%d k=%d maxD2=%v query %d: got %v want %v",
					tc.n, tc.d, tc.k, tc.maxD2, i, buf, want)
			}
		}
		// Off-set query point, no exclusion.
		q := make([]float64, tc.d)
		got := tr.KNN(q, -1, tc.k, tc.maxD2, nil)
		if want := bruteKNN(x, q, -1, tc.k, tc.maxD2); !sameInt32(got, want) {
			t.Fatalf("n=%d d=%d: external query got %v want %v", tc.n, tc.d, got, want)
		}
	}
}

// TestKDTreeKNNTies forces exact distance ties: on a lattice with many
// duplicate points, the (d², index) tie-break must pick the same set as
// brute force.
func TestKDTreeKNNTies(t *testing.T) {
	var x [][]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			p := []float64{float64(i), float64(j)}
			x = append(x, p, append([]float64(nil), p...)) // every point twice
		}
	}
	tr, err := NewKDTree(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 9; k++ {
		var buf []int32
		for i := range x {
			buf = tr.KNN(x[i], int32(i), k, -1, buf[:0])
			want := bruteKNN(x, x[i], i, k, -1)
			if !sameInt32(buf, want) {
				t.Fatalf("k=%d query %d: got %v want %v", k, i, buf, want)
			}
		}
	}
}

// TestKDTreeRadiusMatchesBrute compares Radius to a brute scan (as sets).
func TestKDTreeRadiusMatchesBrute(t *testing.T) {
	cases := []struct {
		n, d int
		r2   float64
	}{
		{1, 1, 1}, {50, 1, 0.5}, {200, 2, 1.0}, {200, 4, 4.0}, {300, 3, 0.01},
	}
	for _, tc := range cases {
		x := randomPoints(int64(tc.n+7*tc.d), tc.n, tc.d)
		tr, err := NewKDTree(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf []int32
		for i := range x {
			buf = tr.Radius(x[i], int32(i), tc.r2, buf[:0])
			sortInt32(buf)
			want := bruteRadius(x, x[i], i, tc.r2)
			if !sameInt32(buf, want) {
				t.Fatalf("n=%d d=%d r2=%v query %d: got %v want %v", tc.n, tc.d, tc.r2, i, buf, want)
			}
		}
	}
	// Negative/NaN radius yields nothing.
	x := randomPoints(3, 10, 2)
	tr, _ := NewKDTree(x, 1)
	if got := tr.Radius(x[0], -1, -1, nil); len(got) != 0 {
		t.Fatalf("negative r2: got %v", got)
	}
	if got := tr.Radius(x[0], -1, math.NaN(), nil); len(got) != 0 {
		t.Fatalf("NaN r2: got %v", got)
	}
}

// TestKDTreeWorkersSameLayout asserts the parallel build produces the same
// tree layout as the serial one.
func TestKDTreeWorkersSameLayout(t *testing.T) {
	x := randomPoints(99, 20000, 3)
	serial, err := NewKDTree(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par, err := NewKDTree(x, w)
		if err != nil {
			t.Fatal(err)
		}
		if !sameInt32(serial.idx, par.idx) {
			t.Fatalf("workers=%d: index layout differs from serial build", w)
		}
	}
}

// TestKDTreeDegenerate covers identical points and k exceeding n.
func TestKDTreeDegenerate(t *testing.T) {
	identical := make([][]float64, 40)
	for i := range identical {
		identical[i] = []float64{2, 2}
	}
	tr, err := NewKDTree(identical, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.KNN(identical[0], 0, 5, -1, nil)
	// All distances tie at 0: indices 1..5 win the index tie-break.
	want := []int32{1, 2, 3, 4, 5}
	if !sameInt32(got, want) {
		t.Fatalf("identical points: got %v want %v", got, want)
	}
	if got := tr.KNN(identical[0], 0, 100, -1, nil); len(got) != 39 {
		t.Fatalf("k>n: %d results, want 39", len(got))
	}
	if got := tr.KNN(identical[0], -1, 0, -1, nil); len(got) != 0 {
		t.Fatalf("k=0: got %v", got)
	}
}
