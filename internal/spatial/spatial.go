// Package spatial provides exact spatial indexes over []float64 point sets:
// a uniform grid cell-list for fixed-radius queries and a KD-tree for
// k-nearest-neighbour and radius queries.
//
// Both indexes exist to replace the O(n²) pairwise distance matrix in graph
// construction. They are exact, not approximate: a radius query's candidate
// set is a superset of every point within the radius, and a kNN query
// returns exactly the k nearest points under the strict total order
// (squared distance, point index) — the same tie-break the brute-force
// builders use. Callers re-apply their own distance and weight filters to
// the candidates, so a graph built through an index is bitwise-identical to
// one built from the full distance matrix.
//
// Queries are read-only after construction and safe for concurrent use; the
// graph layer parallelizes per-point queries on top of internal/parallel.
// Results are pure functions of the input point set, never of scheduling.
package spatial

import "errors"

var (
	// ErrEmpty is returned for empty point sets.
	ErrEmpty = errors.New("spatial: empty input")
	// ErrParam is returned for invalid construction or query parameters.
	ErrParam = errors.New("spatial: invalid parameter")
)

// checkPoints validates a point set: non-empty, with a common dimension of
// at least 1. It returns the dimension.
func checkPoints(x [][]float64) (int, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	dim := len(x[0])
	if dim == 0 {
		return 0, ErrParam
	}
	for _, xi := range x {
		if len(xi) != dim {
			return 0, ErrParam
		}
	}
	return dim, nil
}
