package spatial

import (
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/parallel"
)

// kdLeafSize is the segment length below which nodes stop splitting; leaf
// scans of this size beat further pointer chasing.
const kdLeafSize = 16

// kdParallelMin is the smallest subtree that is worth handing to another
// goroutine during construction.
const kdParallelMin = 4096

// prunePad relaxes the subtree pruning bound by a relative margin so that
// floating-point rounding in the box-distance accumulation can never prune
// a subtree holding a point that ties the current worst candidate. The
// selected set is decided purely by exact (d², index) comparisons on point
// distances, so the pad affects visit counts, never results.
const prunePad = 1e-12

// kdNode is one tree node covering idx[lo:hi]. Internal nodes split that
// range in half; every node carries the exact bounding box of its points
// for query pruning.
type kdNode struct {
	lo, hi      int32
	left, right *kdNode // nil for leaves
	boxMin      []float64
	boxMax      []float64
}

// KDTree is a balanced KD-tree over a point set. Construction splits each
// node's points at the median of the widest box dimension, ordering by
// (coordinate, point index) so the layout is a pure function of the input —
// duplicate and colinear points split deterministically. The tree keeps a
// reference to x; callers must not mutate the points while querying.
// Queries are read-only and safe for concurrent use.
type KDTree struct {
	pts  [][]float64
	dim  int
	idx  []int32
	root *kdNode
}

// NewKDTree builds the tree in O(n log n). workers bounds the goroutines
// used for subtree construction, following the repo convention (<= 0
// selects GOMAXPROCS, 1 builds serially); the layout is identical for every
// worker count.
func NewKDTree(x [][]float64, workers int) (*KDTree, error) {
	dim, err := checkPoints(x)
	if err != nil {
		return nil, err
	}
	t := &KDTree{pts: x, dim: dim, idx: make([]int32, len(x))}
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	budget := int64(parallel.Workers(workers)) - 1
	var wg sync.WaitGroup
	t.root = t.build(0, int32(len(x)), &budget, &wg)
	wg.Wait()
	return t, nil
}

// N returns the number of indexed points.
func (t *KDTree) N() int { return len(t.pts) }

// build constructs the subtree over idx[lo:hi]. budget is a shared count of
// extra goroutines still allowed; the split layout never depends on it.
func (t *KDTree) build(lo, hi int32, budget *int64, wg *sync.WaitGroup) *kdNode {
	node := &kdNode{lo: lo, hi: hi}
	node.boxMin = make([]float64, t.dim)
	node.boxMax = make([]float64, t.dim)
	copy(node.boxMin, t.pts[t.idx[lo]])
	copy(node.boxMax, t.pts[t.idx[lo]])
	for _, p := range t.idx[lo+1 : hi] {
		for j, v := range t.pts[p] {
			if v < node.boxMin[j] {
				node.boxMin[j] = v
			}
			if v > node.boxMax[j] {
				node.boxMax[j] = v
			}
		}
	}
	if hi-lo <= kdLeafSize {
		return node
	}
	// Split on the widest box dimension (ties to the lowest dimension).
	sd := 0
	widest := node.boxMax[0] - node.boxMin[0]
	for j := 1; j < t.dim; j++ {
		if w := node.boxMax[j] - node.boxMin[j]; w > widest {
			sd, widest = j, w
		}
	}
	mid := lo + (hi-lo)/2
	t.selectNth(lo, hi, mid, sd)
	spawn := false
	if hi-lo >= kdParallelMin {
		// Claim a goroutine slot without a lock: budget only decreases.
		for {
			b := atomic.LoadInt64(budget)
			if b <= 0 {
				break
			}
			if atomic.CompareAndSwapInt64(budget, b, b-1) {
				spawn = true
				break
			}
		}
	}
	if spawn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			node.left = t.build(lo, mid, budget, wg)
		}()
	} else {
		node.left = t.build(lo, mid, budget, wg)
	}
	node.right = t.build(mid, hi, budget, wg)
	return node
}

// coordLess orders points by (coordinate in dimension sd, index): the
// strict total order that makes median splits deterministic for duplicate
// coordinates.
func (t *KDTree) coordLess(a, b int32, sd int) bool {
	va, vb := t.pts[a][sd], t.pts[b][sd]
	if va != vb {
		return va < vb
	}
	return a < b
}

// selectNth partially sorts idx[lo:hi] so that idx[nth] holds the element
// of rank nth under coordLess, everything before is <= and everything after
// is >=. Deterministic median-of-three quickselect, mirroring the graph
// package's selectK.
func (t *KDTree) selectNth(lo, hi, nth int32, sd int) {
	hi-- // inclusive
	for lo < hi {
		p := t.partition(lo, hi, sd)
		switch {
		case p == nth:
			return
		case p > nth:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

func (t *KDTree) partition(lo, hi int32, sd int) int32 {
	idx := t.idx
	mid := lo + (hi-lo)/2
	if t.coordLess(idx[mid], idx[lo], sd) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if t.coordLess(idx[hi], idx[mid], sd) {
		idx[hi], idx[mid] = idx[mid], idx[hi]
		if t.coordLess(idx[mid], idx[lo], sd) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
	}
	idx[mid], idx[hi] = idx[hi], idx[mid]
	pv := idx[hi]
	store := lo
	for i := lo; i < hi; i++ {
		if t.coordLess(idx[i], pv, sd) {
			idx[store], idx[i] = idx[i], idx[store]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}

// boxDist2 is the squared distance from q to the node's bounding box (zero
// inside the box).
func boxDist2(q []float64, node *kdNode) float64 {
	var s float64
	for j, v := range q {
		if d := node.boxMin[j] - v; d > 0 {
			s += d * d
		} else if d := v - node.boxMax[j]; d > 0 {
			s += d * d
		}
	}
	return s
}

// kdCand is one candidate in the bounded priority queue.
type kdCand struct {
	d2  float64
	idx int32
}

// worseThan orders candidates by (d², index) descending-priority: a is
// worse than b when it is farther, or equally far with a larger index.
func (a kdCand) worseThan(b kdCand) bool {
	if a.d2 != b.d2 {
		return a.d2 > b.d2
	}
	return a.idx > b.idx
}

// kdHeap is a fixed-capacity max-heap under worseThan; the root is the
// worst retained candidate.
type kdHeap struct {
	cand []kdCand
	cap  int
}

func (h *kdHeap) full() bool { return len(h.cand) == h.cap }

func (h *kdHeap) worst() kdCand { return h.cand[0] }

func (h *kdHeap) push(c kdCand) {
	if len(h.cand) < h.cap {
		h.cand = append(h.cand, c)
		i := len(h.cand) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.cand[i].worseThan(h.cand[parent]) {
				break
			}
			h.cand[i], h.cand[parent] = h.cand[parent], h.cand[i]
			i = parent
		}
		return
	}
	if !h.worst().worseThan(c) {
		return // c does not beat the current worst
	}
	h.cand[0] = c
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(h.cand) && h.cand[l].worseThan(h.cand[w]) {
			w = l
		}
		if r < len(h.cand) && h.cand[r].worseThan(h.cand[w]) {
			w = r
		}
		if w == i {
			return
		}
		h.cand[i], h.cand[w] = h.cand[w], h.cand[i]
		i = w
	}
}

// KNN returns the k nearest indexed points to q under the strict total
// order (squared distance, index), excluding the point with index self
// (pass self < 0 to exclude nothing). With maxD2 >= 0 only points at
// squared distance <= maxD2 qualify, matching an ε-ball pre-filter. Fewer
// than k results are returned when the qualifying set is smaller. The
// result is sorted ascending by index and appended to buf.
//
// The selected set is uniquely determined by the order, so it is identical
// to brute-force selection over all points regardless of traversal order.
func (t *KDTree) KNN(q []float64, self int32, k int, maxD2 float64, buf []int32) []int32 {
	if len(q) != t.dim {
		panic(ErrParam)
	}
	if k <= 0 {
		return buf
	}
	h := &kdHeap{cand: make([]kdCand, 0, k), cap: k}
	t.knnVisit(t.root, q, self, maxD2, h)
	start := len(buf)
	for _, c := range h.cand {
		buf = append(buf, c.idx)
	}
	sortInt32(buf[start:])
	return buf
}

func (t *KDTree) knnVisit(node *kdNode, q []float64, self int32, maxD2 float64, h *kdHeap) {
	if node.left == nil {
		for _, p := range t.idx[node.lo:node.hi] {
			if p == self {
				continue
			}
			d2 := kernel.Dist2(q, t.pts[p])
			if maxD2 >= 0 && d2 > maxD2 {
				continue
			}
			h.push(kdCand{d2: d2, idx: p})
		}
		return
	}
	dl := boxDist2(q, node.left)
	dr := boxDist2(q, node.right)
	first, second := node.left, node.right
	df, ds := dl, dr
	if dr < dl {
		first, second = node.right, node.left
		df, ds = dr, dl
	}
	if t.visitable(df, maxD2, h) {
		t.knnVisit(first, q, self, maxD2, h)
	}
	if t.visitable(ds, maxD2, h) {
		t.knnVisit(second, q, self, maxD2, h)
	}
}

// visitable reports whether a subtree at box distance boxD2 can still
// contribute a candidate. Equality with the current worst must descend (a
// tied point with a smaller index wins the tie-break), hence the strict
// comparison, padded against rounding in the box-distance sum.
func (t *KDTree) visitable(boxD2, maxD2 float64, h *kdHeap) bool {
	if maxD2 >= 0 && boxD2 > maxD2*(1+prunePad) {
		return false
	}
	return !h.full() || !(boxD2 > h.worst().d2*(1+prunePad))
}

// KNNQuery holds reusable state for repeated single-point k-NN lookups
// against one tree — the serving hot path, where the per-call heap
// allocation of KNN would dominate small queries. A KNNQuery may be used by
// one goroutine at a time; concurrent queries each need their own.
type KNNQuery struct {
	t *KDTree
	h kdHeap
}

// NewKNNQuery prepares reusable query state selecting the k nearest points.
func (t *KDTree) NewKNNQuery(k int) *KNNQuery {
	if k < 0 {
		k = 0
	}
	return &KNNQuery{t: t, h: kdHeap{cand: make([]kdCand, 0, k), cap: k}}
}

// WorstDist2 returns the squared distance of the worst candidate the last
// Do retained — the k-th nearest distance when the query found k points —
// or -1 when the last query retained nothing. Every point NOT selected by
// the last Do lies at squared distance >= WorstDist2 under the strict
// (d², index) order, which makes it the anchor of computable residual-mass
// bounds for truncated kernel sums.
func (q *KNNQuery) WorstDist2() float64 {
	if len(q.h.cand) == 0 {
		return -1
	}
	return q.h.worst().d2
}

// Do runs one query, appending to buf exactly what t.KNN(pt, self, k,
// maxD2, buf) would — the k nearest points under the strict (squared
// distance, index) order, sorted ascending by index — without allocating.
func (q *KNNQuery) Do(pt []float64, self int32, maxD2 float64, buf []int32) []int32 {
	t := q.t
	if len(pt) != t.dim {
		panic(ErrParam)
	}
	if q.h.cap <= 0 {
		return buf
	}
	q.h.cand = q.h.cand[:0]
	t.knnVisit(t.root, pt, self, maxD2, &q.h)
	start := len(buf)
	for _, c := range q.h.cand {
		buf = append(buf, c.idx)
	}
	sortInt32(buf[start:])
	return buf
}

// Radius appends to buf every indexed point with squared distance <= r2
// from q (excluding self; pass self < 0 to exclude nothing) and returns the
// extended slice, unsorted. The comparison d² <= r2 is exact, so the result
// equals the brute-force scan.
func (t *KDTree) Radius(q []float64, self int32, r2 float64, buf []int32) []int32 {
	if len(q) != t.dim {
		panic(ErrParam)
	}
	if !(r2 >= 0) {
		return buf
	}
	return t.radiusVisit(t.root, q, self, r2, buf)
}

func (t *KDTree) radiusVisit(node *kdNode, q []float64, self int32, r2 float64, buf []int32) []int32 {
	if boxDist2(q, node) > r2*(1+prunePad) {
		return buf
	}
	if node.left == nil {
		for _, p := range t.idx[node.lo:node.hi] {
			if p == self {
				continue
			}
			if kernel.Dist2(q, t.pts[p]) <= r2 {
				buf = append(buf, p)
			}
		}
		return buf
	}
	buf = t.radiusVisit(node.left, q, self, r2, buf)
	return t.radiusVisit(node.right, q, self, r2, buf)
}

// sortInt32 is insertion sort: KNN results are k elements (k small in every
// caller), where it beats sort.Slice's interface overhead.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
