package spatial

import (
	"testing"

	"repro/internal/kernel"
)

// TestCoarsenPartition: every point lands in exactly one aggregate, sizes
// add up, representatives are members, and no aggregate exceeds
// max(maxSize, leaf capacity).
func TestCoarsenPartition(t *testing.T) {
	x := randomPoints(11, 700, 3)
	tr, err := NewKDTree(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxSize := range []int{1, 8, 32, 128, 1000} {
		c := tr.Coarsen(maxSize)
		if len(c.Assign) != len(x) {
			t.Fatalf("maxSize=%d: assign length %d", maxSize, len(c.Assign))
		}
		if len(c.Reps) != len(c.Sizes) {
			t.Fatalf("maxSize=%d: %d reps vs %d sizes", maxSize, len(c.Reps), len(c.Sizes))
		}
		counts := make([]int32, len(c.Reps))
		for p, id := range c.Assign {
			if id < 0 || int(id) >= len(c.Reps) {
				t.Fatalf("maxSize=%d: point %d assigned out-of-range aggregate %d", maxSize, p, id)
			}
			counts[id]++
		}
		cap := int32(maxSize)
		if cap < kdLeafSize {
			cap = kdLeafSize
		}
		var total int32
		for id, sz := range c.Sizes {
			if sz != counts[id] {
				t.Fatalf("maxSize=%d: aggregate %d claims size %d, assignment says %d", maxSize, id, sz, counts[id])
			}
			if sz < 1 || sz > cap {
				t.Fatalf("maxSize=%d: aggregate %d has size %d, want 1..%d", maxSize, id, sz, cap)
			}
			if c.Assign[c.Reps[id]] != int32(id) {
				t.Fatalf("maxSize=%d: rep %d of aggregate %d is not a member", maxSize, c.Reps[id], id)
			}
			total += sz
		}
		if int(total) != len(x) {
			t.Fatalf("maxSize=%d: sizes sum to %d, want %d", maxSize, total, len(x))
		}
	}
}

// TestCoarsenNests: the partitions at growing thresholds must nest — each
// fine aggregate lies inside exactly one coarse aggregate. The multilevel
// hierarchy and the anchor pipeline both rely on this.
func TestCoarsenNests(t *testing.T) {
	x := randomPoints(7, 1200, 2)
	tr, err := NewKDTree(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := tr.Coarsen(4)
	for _, maxSize := range []int{16, 64, 256} {
		cur := tr.Coarsen(maxSize)
		// Map each fine aggregate to the coarse aggregate of its first seen
		// member; every other member must agree.
		owner := make([]int32, len(prev.Reps))
		for i := range owner {
			owner[i] = -1
		}
		for p, fine := range prev.Assign {
			coarse := cur.Assign[p]
			if owner[fine] < 0 {
				owner[fine] = coarse
				continue
			}
			if owner[fine] != coarse {
				t.Fatalf("maxSize=%d: fine aggregate %d straddles coarse aggregates %d and %d",
					maxSize, fine, owner[fine], coarse)
			}
		}
		prev = cur
	}
}

// TestCoarsenDeterministicAcrossWorkers: the tree layout is worker-count
// independent, so the coarsening must be too.
func TestCoarsenDeterministicAcrossWorkers(t *testing.T) {
	x := randomPoints(3, 9000, 3) // above kdParallelMin so workers matter
	var ref *Coarsening
	for _, w := range []int{1, 2, 8} {
		tr, err := NewKDTree(x, w)
		if err != nil {
			t.Fatal(err)
		}
		c := tr.Coarsen(64)
		if ref == nil {
			ref = c
			continue
		}
		if len(c.Reps) != len(ref.Reps) {
			t.Fatalf("workers=%d: %d aggregates vs %d", w, len(c.Reps), len(ref.Reps))
		}
		for i := range c.Assign {
			if c.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assignment differs at point %d", w, i)
			}
		}
		for i := range c.Reps {
			if c.Reps[i] != ref.Reps[i] {
				t.Fatalf("workers=%d: representative differs for aggregate %d", w, i)
			}
		}
	}
}

// TestCoarsenCentroidRep: the representative is the member closest to the
// aggregate centroid under the strict (d², index) order — checked by brute
// force.
func TestCoarsenCentroidRep(t *testing.T) {
	x := randomPoints(19, 400, 2)
	tr, err := NewKDTree(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Coarsen(32)
	dim := len(x[0])
	for id := range c.Reps {
		cen := make([]float64, dim)
		var members []int32
		for p, a := range c.Assign {
			if a == int32(id) {
				members = append(members, int32(p))
				for j, v := range x[p] {
					cen[j] += v
				}
			}
		}
		for j := range cen {
			cen[j] /= float64(len(members))
		}
		best := members[0]
		bestD2 := kernel.Dist2(cen, x[best])
		for _, p := range members[1:] {
			if d2 := kernel.Dist2(cen, x[p]); d2 < bestD2 || (d2 == bestD2 && p < best) {
				best, bestD2 = p, d2
			}
		}
		if c.Reps[id] != best {
			t.Fatalf("aggregate %d: rep %d, brute-force centroid-closest %d", id, c.Reps[id], best)
		}
	}
}
