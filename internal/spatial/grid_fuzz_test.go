package spatial

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/kernel"
)

// FuzzGridCandidates drives the cell hash and neighbour-cell enumeration
// with arbitrary point sets: coordinates decoded straight from fuzz bytes
// (including degenerate bounding boxes, single points, all-identical points,
// huge magnitudes, and non-finite values). Invariants checked:
//
//   - construction either fails with a typed error or yields a queryable grid
//   - Candidates never returns a duplicate or out-of-range index
//   - for finite inputs, every point within the padded query radius
//     (cell / (1+1e-6), mirroring how the graph builder sizes cells above
//     its interaction radius) appears among the candidates
func FuzzGridCandidates(f *testing.F) {
	mk := func(dim byte, cell float64, coords ...float64) []byte {
		b := []byte{dim}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(cell))
		for _, c := range coords {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c))
		}
		return b
	}
	f.Add(mk(1, 1, 0.5))                           // single point
	f.Add(mk(2, 0.25, 1, 1, 1, 1, 1, 1))           // all identical
	f.Add(mk(1, 1, 0, 0.5, 1, 1.5, 2, 2.5))        // colinear, tie-heavy
	f.Add(mk(3, 1e-9, 0, 0, 0, 1e12, -1e12, 3))    // degenerate box: tiny cell, huge extent
	f.Add(mk(2, 1, math.Inf(1), 0, math.NaN(), 1)) // non-finite coordinates
	f.Add(mk(4, 2, 1, 2, 3, 4, 1, 2, 3, 4))        // duplicates in d=4
	f.Add(mk(1, 0x1p-520, 0, 1e-231))              // cell below MinCell: must be rejected

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		dim := int(data[0]%6) + 1
		cell := math.Float64frombits(binary.LittleEndian.Uint64(data[1:9]))
		data = data[9:]
		var flat []float64
		for len(data) >= 8 && len(flat) < 64*dim {
			flat = append(flat, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		n := len(flat) / dim
		if n == 0 {
			return
		}
		x := make([][]float64, n)
		finite := !math.IsInf(cell, 0) && !math.IsNaN(cell)
		for i := range x {
			x[i] = flat[i*dim : (i+1)*dim]
			for _, v := range x[i] {
				if math.IsInf(v, 0) || math.IsNaN(v) {
					finite = false
				}
			}
		}
		g, err := NewGrid(x, cell)
		if err != nil {
			if err != ErrParam && err != ErrEmpty {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		r := cell / (1 + 1e-6)
		r2 := r * r
		var buf []int32
		for i := range x {
			buf = g.Candidates(x[i], buf[:0])
			seen := make(map[int32]bool, len(buf))
			for _, j := range buf {
				if j < 0 || int(j) >= n {
					t.Fatalf("query %d: candidate %d out of range [0,%d)", i, j, n)
				}
				if seen[j] {
					t.Fatalf("query %d: duplicate candidate %d", i, j)
				}
				seen[j] = true
			}
			if !finite {
				continue // superset contract only claimed for finite inputs
			}
			for j, xj := range x {
				if kernel.Dist2(x[i], xj) <= r2 && !seen[int32(j)] {
					t.Fatalf("query %d: point %d within cell radius but not a candidate", i, j)
				}
			}
		}
	})
}
