package spatial

import (
	"math"
)

// cellCoordCap bounds cell coordinates so degenerate inputs (huge extents,
// tiny cells, non-finite coordinates) cannot overflow the int32 coordinate
// arithmetic; clamping only merges far-apart cells, which keeps candidate
// sets supersets of the true radius neighbourhoods.
const cellCoordCap = 1 << 30

// MinCell is the smallest accepted cell edge length. Below roughly
// √(minimum normal float64) squared lengths underflow to zero, so a caller's
// d² <= r² filter would accept pairs that are geometrically many cells apart
// and the superset contract of Candidates could not hold. Radius queries at
// such scales belong on the KD-tree, whose leaf filter and pruning stay
// exact under underflow.
const MinCell = 0x1p-500

// MaxCell is the largest accepted cell edge length, the overflow dual of
// MinCell: above roughly √(maximum float64) a squared radius overflows to
// +Inf, so a caller's d² <= r² filter keeps every pair regardless of cell
// geometry. The KD-tree handles that regime exactly (its pruning bound
// becomes +Inf and it degenerates to the same full scan as brute force).
const MaxCell = 0x1p+500

// gridCell is one occupied cell: its integer coordinates and the indices of
// the points it contains, ascending (points are inserted in index order).
type gridCell struct {
	coords []int32
	pts    []int32
}

// Grid is a uniform cell-list over a point set, sized for fixed-radius
// queries: with cell edge length >= the query radius, every point within
// the radius of a query lies in the query's cell or one of its 3^d − 1
// neighbours. Occupied cells are kept in a hash map keyed by the cell
// coordinates (the point sets here are sparse in space, so a dense d-
// dimensional array would waste memory); hash collisions are resolved by
// comparing coordinates.
type Grid struct {
	dim   int
	cell  float64
	min   []float64
	cells map[uint64][]gridCell
	n     int
}

// NewGrid indexes the points with the given cell edge length (in
// [MinCell, MaxCell]). The grid keeps a reference to x; callers must not
// mutate the points while querying.
func NewGrid(x [][]float64, cell float64) (*Grid, error) {
	dim, err := checkPoints(x)
	if err != nil {
		return nil, err
	}
	if !(cell >= MinCell && cell <= MaxCell) {
		return nil, ErrParam
	}
	min := make([]float64, dim)
	copy(min, x[0])
	for _, xi := range x[1:] {
		for j, v := range xi {
			// NaN coordinates never update min; cellCoord clamps them.
			if v < min[j] {
				min[j] = v
			}
		}
	}
	g := &Grid{
		dim:   dim,
		cell:  cell,
		min:   min,
		cells: make(map[uint64][]gridCell, len(x)),
		n:     len(x),
	}
	coords := make([]int32, dim)
	for i, xi := range x {
		for j, v := range xi {
			coords[j] = cellCoord(v, min[j], cell)
		}
		g.insert(coords, int32(i))
	}
	return g, nil
}

// N returns the number of indexed points.
func (g *Grid) N() int { return g.n }

// Dim returns the point dimension.
func (g *Grid) Dim() int { return g.dim }

// CellCount returns the number of occupied cells.
func (g *Grid) CellCount() int {
	c := 0
	for _, chain := range g.cells {
		c += len(chain)
	}
	return c
}

// cellCoord maps a coordinate to its integer cell index along one axis.
// Non-finite quotients collapse to the clamp bounds (NaN to 0), so any
// input yields a well-defined cell.
func cellCoord(v, min, cell float64) int32 {
	q := math.Floor((v - min) / cell)
	if math.IsNaN(q) {
		return 0
	}
	if q > cellCoordCap {
		return cellCoordCap
	}
	if q < -cellCoordCap {
		return -cellCoordCap
	}
	return int32(q)
}

// hashCoords is FNV-1a over the little-endian bytes of the coordinates.
func hashCoords(coords []int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range coords {
		u := uint32(c)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= prime64
		}
	}
	return h
}

func (g *Grid) insert(coords []int32, pt int32) {
	key := hashCoords(coords)
	chain := g.cells[key]
	for ci := range chain {
		if coordsEqual(chain[ci].coords, coords) {
			chain[ci].pts = append(chain[ci].pts, pt)
			return
		}
	}
	cc := make([]int32, len(coords))
	copy(cc, coords)
	g.cells[key] = append(chain, gridCell{coords: cc, pts: []int32{pt}})
}

func coordsEqual(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup returns the point list of the cell at coords, or nil.
func (g *Grid) lookup(coords []int32) []int32 {
	for _, c := range g.cells[hashCoords(coords)] {
		if coordsEqual(c.coords, coords) {
			return c.pts
		}
	}
	return nil
}

// Candidates appends to buf the indices of every point in the 3^d cells at
// and around q's cell and returns the extended slice. In exact arithmetic
// the result is a superset of every indexed point within distance g.cell of
// q; because cell assignment divides by the cell length, callers should
// size the cell a hair above the query radius (the graph builder pads by
// 1e-6 relative) so rounding at the exact boundary cannot exclude a true
// neighbour. The caller applies its own exact distance filter afterwards.
// Candidates are unsorted across cells (ascending within each cell);
// callers needing a canonical order sort the result. Safe for concurrent
// use.
func (g *Grid) Candidates(q []float64, buf []int32) []int32 {
	if len(q) != g.dim {
		panic(ErrParam)
	}
	// Coordinate scratch lives on the stack for the dims grids are built at
	// (lookup only reads it), keeping warm candidate queries allocation-free.
	var center, offs, coords []int32
	if g.dim <= 8 {
		var centerA, offsA, coordsA [8]int32
		center, offs, coords = centerA[:g.dim], offsA[:g.dim], coordsA[:g.dim]
	} else {
		center = make([]int32, g.dim)
		offs = make([]int32, g.dim)
		coords = make([]int32, g.dim)
	}
	for j, v := range q {
		center[j] = cellCoord(v, g.min[j], g.cell)
	}
	// Odometer over the 3^d neighbour offsets, each in {-1, 0, +1}.
	for j := range offs {
		offs[j] = -1
	}
	for {
		for j := range coords {
			coords[j] = center[j] + offs[j]
		}
		buf = append(buf, g.lookup(coords)...)
		j := 0
		for ; j < g.dim; j++ {
			if offs[j] < 1 {
				offs[j]++
				break
			}
			offs[j] = -1
		}
		if j == g.dim {
			return buf
		}
	}
}
