package spatial

import (
	"math/rand"
	"sort"
	"testing"
)

// sidePoints generates a deterministic point cloud in [0,1)^dim.
func sidePoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	for i := range x {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		x[i] = p
	}
	return x
}

// bruteRadius returns the live ids within r2 of q, ascending.
func sideBruteRadius(pts [][]float64, alive []bool, q []float64, r2 float64) []int {
	var out []int
	for i, p := range pts {
		if !alive[i] {
			continue
		}
		var d2 float64
		for d := range q {
			dv := q[d] - p[d]
			d2 += dv * dv
		}
		if d2 <= r2 {
			out = append(out, i)
		}
	}
	return out
}

// filterExact reduces a candidate superset to the exact radius set,
// ascending, the way graph construction does.
func filterExact(pts [][]float64, cand []int32, q []float64, r2 float64) []int {
	var out []int
	for _, id := range cand {
		p := pts[id]
		var d2 float64
		for d := range q {
			dv := q[d] - p[d]
			d2 += dv * dv
		}
		if d2 <= r2 {
			out = append(out, int(id))
		}
	}
	sort.Ints(out)
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSideIndexMatchesBrute(t *testing.T) {
	for _, kind := range []SideKind{SideGrid, SideKDTree} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const (
				n0     = 200
				dim    = 3
				radius = 0.2
			)
			rng := rand.New(rand.NewSource(7))
			x := sidePoints(n0, dim, 1)
			s, err := NewSideIndex(x, kind, radius, 0.25, 2)
			if err != nil {
				t.Fatalf("NewSideIndex: %v", err)
			}
			pts := append([][]float64(nil), x...)
			alive := make([]bool, n0)
			for i := range alive {
				alive[i] = true
			}
			r2 := radius * radius
			var buf []int32
			for step := 0; step < 500; step++ {
				switch op := rng.Intn(3); {
				case op == 0: // insert
					p := make([]float64, dim)
					for d := range p {
						p[d] = rng.Float64()
					}
					id, err := s.Insert(p)
					if err != nil {
						t.Fatalf("step %d insert: %v", step, err)
					}
					if id != len(pts) {
						t.Fatalf("step %d: id %d, want %d", step, id, len(pts))
					}
					pts = append(pts, p)
					alive = append(alive, true)
				case op == 1: // delete a random live id
					live := -1
					for tries := 0; tries < 50; tries++ {
						c := rng.Intn(len(pts))
						if alive[c] {
							live = c
							break
						}
					}
					if live < 0 {
						continue
					}
					if err := s.Delete(live); err != nil {
						t.Fatalf("step %d delete %d: %v", step, live, err)
					}
					alive[live] = false
				default: // query
					q := make([]float64, dim)
					for d := range q {
						q[d] = rng.Float64()
					}
					buf = s.Candidates(q, buf)
					for _, id := range buf {
						if !alive[id] {
							t.Fatalf("step %d: dead id %d in candidates", step, id)
						}
					}
					got := filterExact(pts, buf, q, r2)
					want := sideBruteRadius(pts, alive, q, r2)
					if !eqInts(got, want) {
						t.Fatalf("step %d: radius set mismatch\ngot  %v\nwant %v", step, got, want)
					}
				}
			}
			if s.Rebuilds() < 2 {
				t.Fatalf("expected amortized rebuilds over 500 mutations, got %d", s.Rebuilds())
			}
			if s.Live() != countLive(alive) {
				t.Fatalf("live count %d, want %d", s.Live(), countLive(alive))
			}
		})
	}
}

func countLive(alive []bool) int {
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	return n
}

func TestSideIndexRebuildPreservesIDs(t *testing.T) {
	x := sidePoints(64, 2, 3)
	s, err := NewSideIndex(x, SideGrid, 0.3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Force enough churn for several rebuilds; ids must stay slice
	// positions throughout.
	ids := make([]int, 0, 64)
	for i := 0; i < 64; i++ {
		p := []float64{float64(i) * 0.01, 0.5}
		id, err := s.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if got := s.Point(id); &got[0] != &p[0] {
			t.Fatalf("insert %d: point not retained by reference", i)
		}
	}
	for i, id := range ids {
		if id != 64+i {
			t.Fatalf("ids not dense: got %d want %d", id, 64+i)
		}
	}
	if s.Rebuilds() < 2 {
		t.Fatalf("expected rebuilds, got %d", s.Rebuilds())
	}
	if err := s.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ids[0]); err == nil {
		t.Fatal("double delete succeeded")
	}
	if s.Alive(ids[0]) {
		t.Fatal("deleted id still alive")
	}
}

func TestSideIndexParamErrors(t *testing.T) {
	x := sidePoints(10, 3, 4)
	if _, err := NewSideIndex(x, SideGrid, 0, 0, 1); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := NewSideIndex(sidePoints(10, 7, 4), SideGrid, 0.5, 0, 1); err == nil {
		t.Fatal("grid base accepted dim 7")
	}
	s, err := NewSideIndex(x, SideKDTree, 0.5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert([]float64{1, 2}); err == nil {
		t.Fatal("dim-mismatched insert accepted")
	}
	if err := s.Delete(99); err == nil {
		t.Fatal("delete of unknown id accepted")
	}
}
