package spatial

import (
	"fmt"
	"math"
)

// SideKind selects the base index a SideIndex amortizes over.
type SideKind int

const (
	// SideGrid bases the index on a uniform cell-list (dim <= 6, compact
	// support radius within [MinCell, MaxCell]).
	SideGrid SideKind = iota
	// SideKDTree bases the index on a KD-tree with exact radius queries.
	SideKDTree
)

func (k SideKind) String() string {
	switch k {
	case SideGrid:
		return "grid"
	case SideKDTree:
		return "kdtree"
	default:
		return fmt.Sprintf("SideKind(%d)", int(k))
	}
}

// DefaultRebuildFrac is the side-buffer fraction of the base size that
// triggers an amortized base rebuild. At 0.25 a rebuild costs O(n log n)
// every Ω(n) mutations, so the amortized per-mutation cost stays
// O(log n) while the side region never grows past a quarter of the base.
const DefaultRebuildFrac = 0.25

// SideIndex is a mutable fixed-radius index: an immutable base index
// (grid cell-list or KD-tree) over a snapshot of the points, plus a
// buffered side region holding points inserted since the last rebuild
// and an alive mask masking deletions. Queries merge base candidates
// with a scan of the (bounded) side region; once the side region plus
// the accumulated dead count exceeds rebuildFrac of the base size the
// base is rebuilt over the live set, restoring pure-base query cost.
//
// Point identifiers are stable for the life of the index: Insert returns
// the next dense id, Delete retires one, and ids are never reused. The
// index retains references to the inserted point slices; callers must
// not mutate them afterwards.
//
// The index is not safe for concurrent mutation; concurrent Candidates
// calls are safe between mutations.
type SideIndex struct {
	kind        SideKind
	dim         int
	r2          float64 // squared support radius of queries
	cell        float64 // grid cell edge (SideGrid)
	workers     int
	rebuildFrac float64

	pts   [][]float64
	alive []bool
	live  int

	baseN int // pts[:baseN] are covered by the base index
	grid  *Grid
	tree  *KDTree

	churn    int // inserts + deletes since the last rebuild
	rebuilds int
}

// NewSideIndex builds a mutable radius index over x with the given
// support radius. kind selects the base structure; radius must be
// positive and finite (streaming maintenance needs compact support —
// unbounded kernels would connect every pair). rebuildFrac <= 0 selects
// DefaultRebuildFrac. The initial points are retained by reference.
func NewSideIndex(x [][]float64, kind SideKind, radius float64, rebuildFrac float64, workers int) (*SideIndex, error) {
	dim, err := checkPoints(x)
	if err != nil {
		return nil, err
	}
	if !(radius > 0) || math.IsInf(radius, 1) {
		return nil, fmt.Errorf("spatial: side index radius %v: %w", radius, ErrParam)
	}
	if rebuildFrac <= 0 {
		rebuildFrac = DefaultRebuildFrac
	}
	if workers < 1 {
		workers = 1
	}
	s := &SideIndex{
		kind:        kind,
		dim:         dim,
		r2:          radius * radius,
		cell:        radius * (1 + 1e-6),
		workers:     workers,
		rebuildFrac: rebuildFrac,
		pts:         append([][]float64(nil), x...),
		alive:       make([]bool, len(x)),
		live:        len(x),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	if kind == SideGrid && (dim > 6 || s.cell < MinCell || s.cell > MaxCell) {
		return nil, fmt.Errorf("spatial: grid side index needs dim <= 6 and cell in range (dim=%d, cell=%v): %w", dim, s.cell, ErrParam)
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// N returns the total number of ids ever issued (live + dead).
func (s *SideIndex) N() int { return len(s.pts) }

// Live returns the number of live points.
func (s *SideIndex) Live() int { return s.live }

// BaseN returns the prefix length covered by the base index.
func (s *SideIndex) BaseN() int { return s.baseN }

// Rebuilds returns how many amortized base rebuilds have run.
func (s *SideIndex) Rebuilds() int { return s.rebuilds }

// Kind returns the base index structure.
func (s *SideIndex) Kind() SideKind { return s.kind }

// Alive reports whether id is live.
func (s *SideIndex) Alive(id int) bool {
	return id >= 0 && id < len(s.alive) && s.alive[id]
}

// Point returns the coordinates of id (dead ids keep theirs until the
// next rebuild compacts nothing — points are never freed, only masked).
func (s *SideIndex) Point(id int) []float64 { return s.pts[id] }

// Insert adds a point and returns its id. The slice is retained by
// reference. The base index is rebuilt when the side buffer exceeds the
// rebuild fraction.
func (s *SideIndex) Insert(p []float64) (int, error) {
	if len(p) != s.dim {
		return 0, fmt.Errorf("spatial: insert dim %d, want %d: %w", len(p), s.dim, ErrParam)
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("spatial: non-finite insert coordinate: %w", ErrParam)
		}
	}
	id := len(s.pts)
	s.pts = append(s.pts, p)
	s.alive = append(s.alive, true)
	s.live++
	s.churn++
	if err := s.maybeRebuild(); err != nil {
		return 0, err
	}
	return id, nil
}

// Delete retires a live id. The id is never reused.
func (s *SideIndex) Delete(id int) error {
	if id < 0 || id >= len(s.pts) || !s.alive[id] {
		return fmt.Errorf("spatial: delete of dead or unknown id %d: %w", id, ErrParam)
	}
	s.alive[id] = false
	s.live--
	s.churn++
	return s.maybeRebuild()
}

// Candidates appends to buf a superset of the live ids within the
// support radius of q (ids whose exact squared distance to q is at most
// radius²; extra ids farther away may be included). The result is
// unsorted and never contains dead ids. buf is reused when it has
// capacity.
func (s *SideIndex) Candidates(q []float64, buf []int32) []int32 {
	buf = buf[:0]
	switch s.kind {
	case SideGrid:
		raw := s.grid.Candidates(q, nil)
		for _, id := range raw {
			if s.alive[id] {
				buf = append(buf, id)
			}
		}
	default:
		raw := s.tree.Radius(q, -1, s.r2, nil)
		for _, id := range raw {
			if s.alive[id] {
				buf = append(buf, id)
			}
		}
	}
	// Side region: every live point past the base prefix is a candidate.
	// The region is bounded by rebuildFrac·baseN, so the scan stays a
	// constant fraction of a base query.
	for id := s.baseN; id < len(s.pts); id++ {
		if s.alive[id] {
			buf = append(buf, int32(id))
		}
	}
	return buf
}

// maybeRebuild rebuilds the base once accumulated churn (side inserts
// plus deletions anywhere) exceeds the rebuild fraction of the base.
func (s *SideIndex) maybeRebuild() error {
	if float64(s.churn) > s.rebuildFrac*float64(s.baseN)+1 {
		return s.rebuild()
	}
	return nil
}

// Rebuild forces an immediate base rebuild over all current points.
func (s *SideIndex) Rebuild() error { return s.rebuild() }

func (s *SideIndex) rebuild() error {
	// The base indexes the full pts slice (dead ids included — they are
	// filtered at query time). Indexing dead points costs memory
	// proportional to churn but keeps ids identical to slice positions,
	// which is what makes overlay column ids line up with spatial ids.
	switch s.kind {
	case SideGrid:
		g, err := NewGrid(s.pts, s.cell)
		if err != nil {
			return err
		}
		s.grid = g
	default:
		t, err := NewKDTree(s.pts, s.workers)
		if err != nil {
			return err
		}
		s.tree = t
	}
	s.baseN = len(s.pts)
	s.churn = 0
	s.rebuilds++
	return nil
}
