package spatial

import "repro/internal/kernel"

// Coarsening is a partition of the indexed points into contiguous KD-tree
// aggregates, with one representative point per aggregate. It is the
// spatial half of the Nyström anchor pipeline: representatives become the
// anchor subset, and the aggregate structure feeds the multilevel
// preconditioner's prolongation.
type Coarsening struct {
	// Assign maps point index -> aggregate id. Aggregate ids are dense,
	// 0..len(Reps)-1, numbered in depth-first (left before right) tree
	// order, so they are a pure function of the point set.
	Assign []int32
	// Reps maps aggregate id -> index of the member point closest to the
	// aggregate centroid under the strict (squared distance, index) order.
	Reps []int32
	// Sizes maps aggregate id -> member count.
	Sizes []int32
}

// Coarsen cuts the tree at the highest nodes holding at most maxSize
// points and returns the induced partition. Every aggregate is a box of
// the KD construction, so members are spatially contiguous; because node
// sizes shrink monotonically down the tree, the partitions for growing
// maxSize thresholds nest (each aggregate at a smaller threshold lies
// inside exactly one aggregate at any larger threshold) — the property
// the multilevel hierarchy is built on.
//
// Leaves are never split, so aggregates can reach the leaf capacity even
// when maxSize is smaller. The result is deterministic: the tree layout
// is a pure function of the points, and representatives are chosen by
// exact (d², index) comparisons against the centroid.
func (t *KDTree) Coarsen(maxSize int) *Coarsening {
	if maxSize < 1 {
		maxSize = 1
	}
	c := &Coarsening{Assign: make([]int32, len(t.pts))}
	t.coarsenVisit(t.root, maxSize, c)
	return c
}

func (t *KDTree) coarsenVisit(node *kdNode, maxSize int, c *Coarsening) {
	if int(node.hi-node.lo) > maxSize && node.left != nil {
		t.coarsenVisit(node.left, maxSize, c)
		t.coarsenVisit(node.right, maxSize, c)
		return
	}
	id := int32(len(c.Reps))
	members := t.idx[node.lo:node.hi]
	for _, p := range members {
		c.Assign[p] = id
	}
	c.Reps = append(c.Reps, t.centroidRep(members))
	c.Sizes = append(c.Sizes, node.hi-node.lo)
}

// centroidRep returns the member closest to the members' centroid under
// the strict (squared distance, index) order.
func (t *KDTree) centroidRep(members []int32) int32 {
	if len(members) == 1 {
		return members[0]
	}
	cen := make([]float64, t.dim)
	for _, p := range members {
		for j, v := range t.pts[p] {
			cen[j] += v
		}
	}
	inv := 1 / float64(len(members))
	for j := range cen {
		cen[j] *= inv
	}
	best := members[0]
	bestD2 := kernel.Dist2(cen, t.pts[best])
	for _, p := range members[1:] {
		d2 := kernel.Dist2(cen, t.pts[p])
		if d2 < bestD2 || (d2 == bestD2 && p < best) {
			best, bestD2 = p, d2
		}
	}
	return best
}
