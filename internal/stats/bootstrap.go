package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a two-sided percentile confidence interval for a
// statistic of a sample by nonparametric bootstrap resampling. level is the
// coverage (e.g. 0.95); resamples controls the bootstrap size (default 2000
// when 0); the seed makes the interval reproducible.
//
// The experiment harnesses use it to attach intervals to the mean RMSE/AUC
// curves without distributional assumptions.
func BootstrapCI(sample []float64, statistic func([]float64) float64, level float64, resamples int, seed int64) (lo, hi float64, err error) {
	if len(sample) < 2 {
		return 0, 0, ErrEmpty
	}
	if statistic == nil {
		return 0, 0, fmt.Errorf("stats: nil statistic: %w", ErrDegenerate)
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: level %v outside (0,1): %w", level, ErrDegenerate)
	}
	if resamples <= 0 {
		resamples = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(sample)
	stats := make([]float64, resamples)
	buf := make([]float64, n)
	for b := 0; b < resamples; b++ {
		for i := range buf {
			buf[i] = sample[rng.Intn(n)]
		}
		stats[b] = statistic(buf)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return stats[loIdx], stats[hiIdx], nil
}

// MeanStat is the mean statistic for BootstrapCI.
func MeanStat(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// MedianStat is the median statistic for BootstrapCI.
func MedianStat(x []float64) float64 {
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
