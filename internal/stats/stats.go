// Package stats implements the evaluation metrics of the paper's numerical
// studies (RMSE on the regression function, AUC for the COIL-style binary
// task) plus the supporting descriptive statistics, confusion-matrix
// classification metrics (accuracy, MCC, F1 — MCC is named in the paper's
// future-work section), and streaming aggregation for replicated
// experiments.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

var (
	// ErrEmpty is returned for empty samples.
	ErrEmpty = errors.New("stats: empty input")
	// ErrLength is returned for mismatched slice lengths.
	ErrLength = errors.New("stats: length mismatch")
	// ErrDegenerate is returned when a metric is undefined for the input
	// (e.g. AUC with a single class).
	ErrDegenerate = errors.New("stats: metric undefined for input")
)

// RMSE returns sqrt(mean((pred-truth)²)) — the paper's synthetic-study
// metric with truth = q(X) on the unlabeled points.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, ErrLength
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i, p := range pred {
		d := p - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred))), nil
}

// MAE returns mean(|pred-truth|).
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, ErrLength
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - truth[i])
	}
	return s / float64(len(pred)), nil
}

// Bias returns mean(pred-truth).
func Bias(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, ErrLength
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i, p := range pred {
		s += p - truth[i]
	}
	return s / float64(len(pred)), nil
}

// AUC returns the area under the ROC curve for scores against binary labels
// (1 = positive, 0 = negative). Ties in scores receive the standard 1/2
// credit (rank-based Mann–Whitney formulation), so the result is exact for
// any tie structure.
func AUC(scores []float64, labels []float64) (float64, error) {
	if len(scores) != len(labels) {
		return 0, ErrLength
	}
	n := len(scores)
	if n == 0 {
		return 0, ErrEmpty
	}
	var pos, neg float64
	for _, l := range labels {
		switch l {
		case 1:
			pos++
		case 0:
			neg++
		default:
			return 0, fmt.Errorf("stats: label %v not in {0,1}: %w", l, ErrDegenerate)
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("stats: AUC needs both classes: %w", ErrDegenerate)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Midranks over tied score groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	var rankSumPos float64
	for i, l := range labels {
		if l == 1 {
			rankSumPos += ranks[i]
		}
	}
	u := rankSumPos - pos*(pos+1)/2
	return u / (pos * neg), nil
}

// ROCPoint is one point on the ROC curve.
type ROCPoint struct {
	FPR       float64
	TPR       float64
	Threshold float64
}

// ROC returns the ROC curve from the highest threshold (0,0) to the lowest
// (1,1), merging tied scores into single steps.
func ROC(scores, labels []float64) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, ErrLength
	}
	n := len(scores)
	if n == 0 {
		return nil, ErrEmpty
	}
	var pos, neg float64
	for _, l := range labels {
		if l != 0 && l != 1 {
			return nil, fmt.Errorf("stats: label %v not in {0,1}: %w", l, ErrDegenerate)
		}
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("stats: ROC needs both classes: %w", ErrDegenerate)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	curve := []ROCPoint{{FPR: 0, TPR: 0, Threshold: math.Inf(1)}}
	var tp, fp float64
	for i := 0; i < n; {
		j := i
		thr := scores[idx[i]]
		for j < n && scores[idx[j]] == thr {
			if labels[idx[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{FPR: fp / neg, TPR: tp / pos, Threshold: thr})
		i = j
	}
	return curve, nil
}

// AUCFromROC integrates an ROC curve by the trapezoid rule; it matches AUC
// exactly because ties are merged into single curve steps.
func AUCFromROC(curve []ROCPoint) (float64, error) {
	if len(curve) < 2 {
		return 0, ErrEmpty
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area, nil
}

// Confusion is a 2x2 confusion matrix for binary classification.
type Confusion struct {
	TP, FP, TN, FN float64
}

// NewConfusion thresholds scores at thr (score > thr ⇒ predicted positive)
// against binary labels.
func NewConfusion(scores, labels []float64, thr float64) (Confusion, error) {
	if len(scores) != len(labels) {
		return Confusion{}, ErrLength
	}
	if len(scores) == 0 {
		return Confusion{}, ErrEmpty
	}
	var c Confusion
	for i, s := range scores {
		predPos := s > thr
		switch {
		case labels[i] == 1 && predPos:
			c.TP++
		case labels[i] == 1 && !predPos:
			c.FN++
		case labels[i] == 0 && predPos:
			c.FP++
		case labels[i] == 0 && !predPos:
			c.TN++
		default:
			return Confusion{}, fmt.Errorf("stats: label %v not in {0,1}: %w", labels[i], ErrDegenerate)
		}
	}
	return c, nil
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return math.NaN()
	}
	return (c.TP + c.TN) / total
}

// Precision returns TP/(TP+FP); NaN when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return c.TP / (c.TP + c.FP)
}

// Recall returns TP/(TP+FN); NaN when there are no positive labels.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return c.TP / (c.TP + c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// MCC returns the Matthews correlation coefficient; 0 when any marginal is
// empty (the standard convention).
func (c Confusion) MCC() float64 {
	den := math.Sqrt((c.TP + c.FP) * (c.TP + c.FN) * (c.TN + c.FP) * (c.TN + c.FN))
	if den == 0 {
		return 0
	}
	return (c.TP*c.TN - c.FP*c.FN) / den
}

// Mean returns the arithmetic mean.
func Mean(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x)), nil
}

// Variance returns the unbiased sample variance.
func Variance(x []float64) (float64, error) {
	if len(x) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(x []float64) (float64, error) {
	v, err := Variance(x)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the R default).
func Quantile(x []float64, q float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]: %w", q, ErrDegenerate)
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5 quantile.
func Median(x []float64) (float64, error) { return Quantile(x, 0.5) }

// Welford accumulates mean and variance in one pass; used by the experiment
// harness to aggregate replicated RMSEs/AUCs without storing them all.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean; NaN when empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased variance; NaN when n < 2.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean; NaN when n < 2.
func (w *Welford) StdErr() float64 {
	v := w.Variance()
	if math.IsNaN(v) {
		return v
	}
	return math.Sqrt(v / float64(w.n))
}
