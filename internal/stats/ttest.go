package stats

import (
	"fmt"
	"math"
)

// TTestResult reports a paired two-sided t-test.
type TTestResult struct {
	// T is the test statistic mean(d)/se(d).
	T float64
	// DF is the degrees of freedom (n−1).
	DF int
	// P is the two-sided p-value from the Student-t distribution.
	P float64
	// MeanDiff is the mean paired difference a−b.
	MeanDiff float64
}

// PairedTTest tests whether paired samples a and b share a mean
// (two-sided). It is used to report the significance of the hard-vs-soft
// RMSE gaps across replications.
func PairedTTest(a, b []float64) (*TTestResult, error) {
	if len(a) != len(b) {
		return nil, ErrLength
	}
	n := len(a)
	if n < 2 {
		return nil, ErrEmpty
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	mean, _ := Mean(diffs)
	v, err := Variance(diffs)
	if err != nil {
		return nil, err
	}
	if v == 0 {
		// Identical pairs: no evidence of any difference unless the mean
		// itself is nonzero (impossible with zero variance unless constant
		// shift, which is then infinitely significant).
		if mean == 0 {
			return &TTestResult{T: 0, DF: n - 1, P: 1, MeanDiff: 0}, nil
		}
		return &TTestResult{T: math.Inf(sign(mean)), DF: n - 1, P: 0, MeanDiff: mean}, nil
	}
	se := math.Sqrt(v / float64(n))
	t := mean / se
	p := 2 * studentTSF(math.Abs(t), float64(n-1))
	if p > 1 {
		p = 1
	}
	return &TTestResult{T: t, DF: n - 1, P: p, MeanDiff: mean}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSF returns P(T > t) for Student's t with df degrees of freedom,
// via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the standard continued-fraction expansion (Numerical Recipes
// style), accurate to ~1e-12 for the df ranges used here.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF is the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	// Slow convergence only for extreme parameters; return the best
	// estimate rather than failing a diagnostic-grade computation.
	return h
}

// String renders the test compactly.
func (r *TTestResult) String() string {
	return fmt.Sprintf("t(%d)=%.3f, p=%.3g, Δ=%.4g", r.DF, r.T, r.P, r.MeanDiff)
}
