package stats

import (
	"fmt"
	"math"
)

// Brier returns the Brier score mean((p−y)²) of probabilistic predictions
// against binary outcomes — a proper scoring rule complementing AUC for the
// criteria's probability estimates (the hard criterion's scores estimate
// E[Y|X] directly, so calibration is meaningful).
func Brier(probs, labels []float64) (float64, error) {
	if len(probs) != len(labels) {
		return 0, ErrLength
	}
	if len(probs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i, p := range probs {
		if labels[i] != 0 && labels[i] != 1 {
			return 0, fmt.Errorf("stats: label %v not in {0,1}: %w", labels[i], ErrDegenerate)
		}
		d := p - labels[i]
		s += d * d
	}
	return s / float64(len(probs)), nil
}

// CalibrationBin is one reliability-curve bucket.
type CalibrationBin struct {
	// MeanPredicted is the average predicted probability in the bin.
	MeanPredicted float64
	// ObservedRate is the empirical positive rate in the bin.
	ObservedRate float64
	// Count is the number of points in the bin.
	Count int
}

// Calibration builds an equal-width reliability curve with the given number
// of bins over [0,1]. Predictions outside [0,1] are clamped. Empty bins are
// omitted.
func Calibration(probs, labels []float64, bins int) ([]CalibrationBin, error) {
	if len(probs) != len(labels) {
		return nil, ErrLength
	}
	if len(probs) == 0 {
		return nil, ErrEmpty
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins=%d: %w", bins, ErrDegenerate)
	}
	sums := make([]float64, bins)
	pos := make([]float64, bins)
	count := make([]int, bins)
	for i, p := range probs {
		if labels[i] != 0 && labels[i] != 1 {
			return nil, fmt.Errorf("stats: label %v not in {0,1}: %w", labels[i], ErrDegenerate)
		}
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		b := int(p * float64(bins))
		if b == bins {
			b = bins - 1
		}
		sums[b] += p
		pos[b] += labels[i]
		count[b]++
	}
	var out []CalibrationBin
	for b := 0; b < bins; b++ {
		if count[b] == 0 {
			continue
		}
		out = append(out, CalibrationBin{
			MeanPredicted: sums[b] / float64(count[b]),
			ObservedRate:  pos[b] / float64(count[b]),
			Count:         count[b],
		})
	}
	return out, nil
}

// ECE returns the expected calibration error: the count-weighted mean
// absolute gap between predicted and observed rates across the reliability
// bins.
func ECE(probs, labels []float64, bins int) (float64, error) {
	curve, err := Calibration(probs, labels, bins)
	if err != nil {
		return 0, err
	}
	var total, weighted float64
	for _, b := range curve {
		weighted += float64(b.Count) * math.Abs(b.MeanPredicted-b.ObservedRate)
		total += float64(b.Count)
	}
	return weighted / total, nil
}
