package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("RMSE exact = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(12.5); math.Abs(got-want) > 1e-15 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLength) {
		t.Fatalf("want ErrLength, got %v", err)
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestMAEBias(t *testing.T) {
	mae, err := MAE([]float64{1, -1}, []float64{0, 0})
	if err != nil || mae != 1 {
		t.Fatalf("MAE = %v, %v", mae, err)
	}
	b, err := Bias([]float64{2, 2}, []float64{1, 1})
	if err != nil || b != 1 {
		t.Fatalf("Bias = %v, %v", b, err)
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("MAE empty must error")
	}
	if _, err := Bias([]float64{1}, []float64{}); !errors.Is(err, ErrLength) {
		t.Fatal("Bias mismatch must error")
	}
	if _, err := Bias(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Bias empty must error")
	}
}

func TestAUCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float64{1, 1, 0, 0}
	auc, err := AUC(scores, labels)
	if err != nil || auc != 1 {
		t.Fatalf("AUC = %v, %v", auc, err)
	}
}

func TestAUCAntiPerfect(t *testing.T) {
	auc, err := AUC([]float64{0.1, 0.9}, []float64{1, 0})
	if err != nil || auc != 0 {
		t.Fatalf("AUC = %v, %v", auc, err)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 4000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < 0.5 {
			labels[i] = 1
		}
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestAUCAllTiedScoresIsHalf(t *testing.T) {
	auc, err := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []float64{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1}, []float64{1, 0}); !errors.Is(err, ErrLength) {
		t.Fatalf("want ErrLength, got %v", err)
	}
	if _, err := AUC(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := AUC([]float64{1, 2}, []float64{1, 1}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("single class: want ErrDegenerate, got %v", err)
	}
	if _, err := AUC([]float64{1}, []float64{2}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("bad label: want ErrDegenerate, got %v", err)
	}
}

func TestAUCComplementSymmetryProperty(t *testing.T) {
	// AUC(-scores) = 1 - AUC(scores) when there are no ties.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]float64, n)
		pos := 0
		for i := range scores {
			scores[i] = rng.NormFloat64()
			if rng.Float64() < 0.5 {
				labels[i] = 1
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		a1, err1 := AUC(scores, labels)
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		a2, err2 := AUC(neg, labels)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a1+a2-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestROCAndAUCAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 200
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		if rng.Float64() < 0.4 {
			labels[i] = 1
			scores[i] = rng.NormFloat64() + 1
		} else {
			scores[i] = rng.NormFloat64()
		}
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Fatal("ROC must start at origin")
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("ROC must end at (1,1), got (%v,%v)", last.FPR, last.TPR)
	}
	fromCurve, err := AUCFromROC(curve)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fromCurve-direct) > 1e-12 {
		t.Fatalf("AUCFromROC %v != AUC %v", fromCurve, direct)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	scores := make([]float64, 50)
	labels := make([]float64, 50)
	for i := range scores {
		scores[i] = rng.Float64()
		if i%2 == 0 {
			labels[i] = 1
		}
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatal("ROC must be monotone")
		}
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty must error")
	}
	if _, err := ROC([]float64{1}, []float64{1, 0}); !errors.Is(err, ErrLength) {
		t.Fatal("mismatch must error")
	}
	if _, err := ROC([]float64{1, 2}, []float64{1, 1}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("one class must error")
	}
	if _, err := ROC([]float64{1}, []float64{7}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("bad label must error")
	}
	if _, err := AUCFromROC(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty curve must error")
	}
}

func TestConfusionAndDerivedMetrics(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.1}
	labels := []float64{1, 0, 1, 0}
	c, err := NewConfusion(scores, labels, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 {
		t.Fatalf("precision/recall = %v/%v", c.Precision(), c.Recall())
	}
	if c.F1() != 0.5 {
		t.Fatalf("F1 = %v", c.F1())
	}
	if c.MCC() != 0 {
		t.Fatalf("MCC = %v, want 0 for coin-flip confusion", c.MCC())
	}
}

func TestConfusionPerfect(t *testing.T) {
	c, err := NewConfusion([]float64{0.9, 0.1}, []float64{1, 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.MCC() != 1 || c.Accuracy() != 1 || c.F1() != 1 {
		t.Fatalf("perfect classifier metrics wrong: %+v", c)
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion(nil, nil, 0); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty must error")
	}
	if _, err := NewConfusion([]float64{1}, []float64{1, 0}, 0); !errors.Is(err, ErrLength) {
		t.Fatal("mismatch must error")
	}
	if _, err := NewConfusion([]float64{1}, []float64{3}, 0); !errors.Is(err, ErrDegenerate) {
		t.Fatal("bad label must error")
	}
}

func TestConfusionNaNEdgeCases(t *testing.T) {
	var c Confusion
	if !math.IsNaN(c.Accuracy()) || !math.IsNaN(c.Precision()) ||
		!math.IsNaN(c.Recall()) || !math.IsNaN(c.F1()) {
		t.Fatal("empty confusion metrics must be NaN")
	}
	if c.MCC() != 0 {
		t.Fatal("empty confusion MCC must be 0")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(x)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	v, err := Variance(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-32.0/7.0) > 1e-14 {
		t.Fatalf("Variance = %v", v)
	}
	sd, err := StdDev(x)
	if err != nil || math.Abs(sd-math.Sqrt(32.0/7.0)) > 1e-14 {
		t.Fatalf("StdDev = %v, %v", sd, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Mean empty must error")
	}
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatal("Variance single must error")
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("StdDev empty must error")
	}
}

func TestQuantileMedian(t *testing.T) {
	x := []float64{3, 1, 2}
	med, err := Median(x)
	if err != nil || med != 2 {
		t.Fatalf("Median = %v, %v", med, err)
	}
	q0, _ := Quantile(x, 0)
	q1, _ := Quantile(x, 1)
	if q0 != 1 || q1 != 3 {
		t.Fatalf("extremes = %v, %v", q0, q1)
	}
	q25, _ := Quantile([]float64{1, 2, 3, 4}, 0.25)
	if math.Abs(q25-1.75) > 1e-15 {
		t.Fatalf("Q25 = %v, want 1.75", q25)
	}
	single, _ := Quantile([]float64{5}, 0.7)
	if single != 5 {
		t.Fatalf("single-element quantile = %v", single)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty must error")
	}
	if _, err := Quantile(x, 1.5); !errors.Is(err, ErrDegenerate) {
		t.Fatal("q>1 must error")
	}
	if _, err := Quantile(x, math.NaN()); !errors.Is(err, ErrDegenerate) {
		t.Fatal("NaN q must error")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	x := []float64{3, 1, 2}
	if _, err := Median(x); err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatal("Quantile must not sort the caller's slice")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	x := make([]float64, 500)
	var w Welford
	for i := range x {
		x[i] = rng.NormFloat64()*3 + 1
		w.Add(x[i])
	}
	m, _ := Mean(x)
	v, _ := Variance(x)
	if w.N() != 500 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-m) > 1e-12 {
		t.Fatalf("Welford mean %v vs %v", w.Mean(), m)
	}
	if math.Abs(w.Variance()-v) > 1e-12 {
		t.Fatalf("Welford var %v vs %v", w.Variance(), v)
	}
	if math.Abs(w.StdErr()-math.Sqrt(v/500)) > 1e-12 {
		t.Fatalf("StdErr = %v", w.StdErr())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.StdErr()) {
		t.Fatal("empty Welford stats must be NaN")
	}
}
