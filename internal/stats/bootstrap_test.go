package stats

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBootstrapCICoversTrueMean(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	// Sample from N(5, 1): the 95% CI for the mean should usually cover 5.
	covered := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		sample := make([]float64, 60)
		for i := range sample {
			sample[i] = 5 + rng.NormFloat64()
		}
		lo, hi, err := BootstrapCI(sample, MeanStat, 0.95, 500, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("inverted interval [%v, %v]", lo, hi)
		}
		if lo <= 5 && 5 <= hi {
			covered++
		}
	}
	if covered < 40 { // ≥80% empirical coverage of a 95% interval
		t.Fatalf("coverage %d/%d too low", covered, trials)
	}
}

func TestBootstrapCIIntervalShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	lo1, hi1, err := BootstrapCI(small, MeanStat, 0.95, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapCI(large, MeanStat, 0.95, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Fatalf("interval did not shrink: %v vs %v", hi2-lo2, hi1-lo1)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6}
	lo1, hi1, err := BootstrapCI(sample, MedianStat, 0.9, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapCI(sample, MedianStat, 0.9, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("same seed must reproduce the interval")
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	if _, _, err := BootstrapCI([]float64{1}, MeanStat, 0.95, 100, 1); !errors.Is(err, ErrEmpty) {
		t.Fatal("n<2 must error")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, nil, 0.95, 100, 1); !errors.Is(err, ErrDegenerate) {
		t.Fatal("nil statistic must error")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, MeanStat, 1.5, 100, 1); !errors.Is(err, ErrDegenerate) {
		t.Fatal("bad level must error")
	}
}

func TestMeanMedianStats(t *testing.T) {
	if MeanStat([]float64{1, 2, 3}) != 2 {
		t.Fatal("MeanStat wrong")
	}
	if MedianStat([]float64{3, 1, 2}) != 2 {
		t.Fatal("MedianStat odd wrong")
	}
	if MedianStat([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("MedianStat even wrong")
	}
	x := []float64{3, 1}
	_ = MedianStat(x)
	if x[0] != 3 {
		t.Fatal("MedianStat must not mutate input")
	}
}
