package stats

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPairedTTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.P != 1 || res.MeanDiff != 0 {
		t.Fatalf("identical samples: %+v", res)
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 3, 4}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.T, -1) || res.P != 0 || res.MeanDiff != -1 {
		t.Fatalf("constant shift: %+v", res)
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// d = [1, 2, 3, 4, 5]: mean 3, sd sqrt(2.5), se sqrt(0.5),
	// t = 3/sqrt(0.5) ≈ 4.2426, df = 4, two-sided p ≈ 0.0132.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{0, 0, 0, 0, 0}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T-4.242640687) > 1e-6 {
		t.Fatalf("t = %v", res.T)
	}
	if res.DF != 4 {
		t.Fatalf("df = %d", res.DF)
	}
	if math.Abs(res.P-0.01324) > 5e-4 {
		t.Fatalf("p = %v, want ≈ 0.0132", res.P)
	}
}

func TestPairedTTestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.5
	}
	r1, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.T+r2.T) > 1e-12 || math.Abs(r1.P-r2.P) > 1e-12 {
		t.Fatalf("asymmetric: %+v vs %+v", r1, r2)
	}
}

func TestPairedTTestNullCalibration(t *testing.T) {
	// Under the null, P should be roughly uniform: count p<0.05 over many
	// repetitions and expect around 5%.
	rng := rand.New(rand.NewSource(63))
	const trials = 400
	rejections := 0
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := PairedTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.10 {
		t.Fatalf("null rejection rate %v too high", rate)
	}
}

func TestPairedTTestDetectsRealDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		base := rng.NormFloat64()
		a[i] = base
		b[i] = base + 1 + rng.NormFloat64()*0.2
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("large paired difference not detected: %+v", res)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLength) {
		t.Fatal("length mismatch must error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatal("n<2 must error")
	}
}

func TestTTestString(t *testing.T) {
	res := &TTestResult{T: 2.5, DF: 9, P: 0.034, MeanDiff: 0.12}
	s := res.String()
	if !strings.Contains(s, "t(9)") || !strings.Contains(s, "p=0.034") {
		t.Fatalf("String = %q", s)
	}
}

func TestRegIncBetaBoundaries(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if math.Abs(regIncBeta(1, 1, x)-x) > 1e-12 {
			t.Fatalf("I_%v(1,1) = %v", x, regIncBeta(1, 1, x))
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if math.Abs(regIncBeta(2.5, 4, 0.3)-(1-regIncBeta(4, 2.5, 0.7))) > 1e-12 {
		t.Fatal("symmetry identity violated")
	}
}

func TestStudentTSFKnownQuantiles(t *testing.T) {
	// For df=10, P(T > 1.812) ≈ 0.05 (standard t-table).
	if p := studentTSF(1.812, 10); math.Abs(p-0.05) > 2e-3 {
		t.Fatalf("sf(1.812; 10) = %v, want ≈ 0.05", p)
	}
	// For df=1 (Cauchy), P(T > 1) = 0.25.
	if p := studentTSF(1, 1); math.Abs(p-0.25) > 1e-10 {
		t.Fatalf("sf(1; 1) = %v, want 0.25", p)
	}
	if p := studentTSF(0, 5); p != 0.5 {
		t.Fatalf("sf(0) = %v, want 0.5", p)
	}
}
