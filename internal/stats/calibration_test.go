package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestBrierKnown(t *testing.T) {
	b, err := Brier([]float64{1, 0}, []float64{1, 0})
	if err != nil || b != 0 {
		t.Fatalf("perfect Brier = %v, %v", b, err)
	}
	b, err = Brier([]float64{0.5, 0.5}, []float64{1, 0})
	if err != nil || b != 0.25 {
		t.Fatalf("coin-flip Brier = %v, %v", b, err)
	}
	b, err = Brier([]float64{0, 1}, []float64{1, 0})
	if err != nil || b != 1 {
		t.Fatalf("anti-perfect Brier = %v, %v", b, err)
	}
}

func TestBrierErrors(t *testing.T) {
	if _, err := Brier(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty must error")
	}
	if _, err := Brier([]float64{1}, []float64{1, 0}); !errors.Is(err, ErrLength) {
		t.Fatal("length mismatch must error")
	}
	if _, err := Brier([]float64{0.5}, []float64{2}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("bad label must error")
	}
}

func TestCalibrationPerfectlyCalibrated(t *testing.T) {
	// Predictions equal to true rates: observed ≈ predicted per bin.
	rng := rand.New(rand.NewSource(121))
	n := 20000
	probs := make([]float64, n)
	labels := make([]float64, n)
	for i := range probs {
		probs[i] = rng.Float64()
		if rng.Float64() < probs[i] {
			labels[i] = 1
		}
	}
	curve, err := Calibration(probs, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 10 {
		t.Fatalf("bins = %d", len(curve))
	}
	for _, b := range curve {
		if math.Abs(b.MeanPredicted-b.ObservedRate) > 0.05 {
			t.Fatalf("calibrated predictor off in bin: %+v", b)
		}
	}
	ece, err := ECE(probs, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 0.03 {
		t.Fatalf("ECE = %v for calibrated predictor", ece)
	}
}

func TestCalibrationMiscalibrated(t *testing.T) {
	// Constant prediction 0.9 with true rate 0.5: ECE ≈ 0.4.
	n := 2000
	probs := make([]float64, n)
	labels := make([]float64, n)
	for i := range probs {
		probs[i] = 0.9
		if i%2 == 0 {
			labels[i] = 1
		}
	}
	ece, err := ECE(probs, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece-0.4) > 1e-9 {
		t.Fatalf("ECE = %v, want 0.4", ece)
	}
}

func TestCalibrationClampsAndBins(t *testing.T) {
	probs := []float64{-0.5, 1.5, 0.5}
	labels := []float64{0, 1, 1}
	curve, err := Calibration(probs, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to 0 and 1: bins 0 and 1 both occupied.
	if len(curve) != 2 {
		t.Fatalf("curve = %+v", curve)
	}
	if curve[0].Count != 1 || curve[1].Count != 2 {
		t.Fatalf("counts = %+v", curve)
	}
}

func TestCalibrationErrors(t *testing.T) {
	if _, err := Calibration(nil, nil, 5); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty must error")
	}
	if _, err := Calibration([]float64{1}, []float64{1, 0}, 5); !errors.Is(err, ErrLength) {
		t.Fatal("mismatch must error")
	}
	if _, err := Calibration([]float64{0.5}, []float64{1}, 0); !errors.Is(err, ErrDegenerate) {
		t.Fatal("bins=0 must error")
	}
	if _, err := Calibration([]float64{0.5}, []float64{3}, 2); !errors.Is(err, ErrDegenerate) {
		t.Fatal("bad label must error")
	}
	if _, err := ECE(nil, nil, 5); err == nil {
		t.Fatal("ECE empty must error")
	}
}
