package stats

import (
	"math"
	"testing"
)

// FuzzAUC checks AUC's structural invariants on arbitrary score/label
// inputs: the result is always in [0,1] and complementing the scores
// reflects it around 1/2.
func FuzzAUC(f *testing.F) {
	f.Add([]byte{10, 200, 30, 4}, uint8(5))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(21))
	f.Add([]byte{255, 0, 255, 0}, uint8(10))
	f.Fuzz(func(t *testing.T, raw []byte, labelBits uint8) {
		if len(raw) < 2 || len(raw) > 64 {
			return
		}
		scores := make([]float64, len(raw))
		labels := make([]float64, len(raw))
		var pos, neg int
		for i, b := range raw {
			scores[i] = float64(b) / 255
			if (labelBits>>(i%8))&1 == 1 {
				labels[i] = 1
				pos++
			} else {
				neg++
			}
		}
		auc, err := AUC(scores, labels)
		if pos == 0 || neg == 0 {
			if err == nil {
				t.Fatal("single-class input must error")
			}
			return
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if auc < 0 || auc > 1 || math.IsNaN(auc) {
			t.Fatalf("AUC = %v out of range", auc)
		}
		inv := make([]float64, len(scores))
		for i, s := range scores {
			inv[i] = -s
		}
		aucInv, err := AUC(inv, labels)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(auc+aucInv-1) > 1e-9 {
			t.Fatalf("complement symmetry violated: %v + %v != 1", auc, aucInv)
		}
	})
}

// FuzzQuantile checks that quantiles are always within the sample range and
// monotone in q.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 0.3, 0.7)
	f.Add([]byte{200}, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, raw []byte, q1, q2 float64) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		if math.IsNaN(q1) || math.IsNaN(q2) || q1 < 0 || q1 > 1 || q2 < 0 || q2 > 1 {
			return
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		x := make([]float64, len(raw))
		for i, b := range raw {
			x[i] = float64(b)
		}
		v1, err := Quantile(x, q1)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := Quantile(x, q2)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := Quantile(x, 0)
		hi, _ := Quantile(x, 1)
		if v1 < lo || v2 > hi {
			t.Fatalf("quantiles outside range: %v %v not in [%v,%v]", v1, v2, lo, hi)
		}
		if v1 > v2 {
			t.Fatalf("quantile not monotone: q%v=%v > q%v=%v", q1, v1, q2, v2)
		}
	})
}
