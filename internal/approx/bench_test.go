package approx

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
)

// BenchmarkSolveHard times the full approximate pipeline (tree, anchors,
// reduced solve, NW extension, certificate) on the planar sparse-label
// fixture at sizes where the engine is the intended path. The full-graph
// build is excluded: it is shared with the exact path. Use -cpuprofile to
// see the stage split.
func BenchmarkSolveHard(b *testing.B) {
	for _, n := range []int{50000, 200000, 1000000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			k, err := kernel.New(kernel.Epanechnikov, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			x := make([][]float64, n)
			for i := range x {
				x[i] = []float64{rng.Float64(), rng.Float64()}
			}
			gb, err := graph.NewBuilder(k, graph.WithKNN(8))
			if err != nil {
				b.Fatal(err)
			}
			g, err := gb.Build(x)
			if err != nil {
				b.Fatal(err)
			}
			var labeled []int
			var y []float64
			for i := 0; i < n; i += 1000 {
				labeled = append(labeled, i)
				y = append(y, math.Sin(4*x[i][0])*math.Cos(3*x[i][1]))
			}
			p, err := core.NewProblem(g, labeled, y)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res *Result
			for i := 0; i < b.N; i++ {
				res, err = SolveHard(p, x, Options{Kernel: k, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.TreeNs)/1e9, "tree-s")
			b.ReportMetric(float64(res.ReducedNs)/1e9, "reduced-s")
			b.ReportMetric(float64(res.ExtendNs)/1e9, "extend-s")
			b.ReportMetric(float64(res.CertifyNs)/1e9, "certify-s")
			b.ReportMetric(float64(res.BarrierIterations), "barrier-iters")
			b.ReportMetric(float64(res.ReducedIterations), "reduced-iters")
		})
	}
}
