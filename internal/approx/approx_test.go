package approx

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/spatial"
)

// testProblem builds an n-point planar problem with every step-th point
// labeled by a smooth response, the standard large-n fixture of the
// perfbench suites.
func testProblem(t *testing.T, n, step int, k *kernel.K, knn int, seed int64) (*core.Problem, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
	}
	b, err := graph.NewBuilder(k, graph.WithKNN(knn))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	var labeled []int
	var y []float64
	for i := 0; i < n; i += step {
		labeled = append(labeled, i)
		y = append(y, math.Sin(4*x[i][0])*math.Cos(3*x[i][1]))
	}
	p, err := core.NewProblem(g, labeled, y)
	if err != nil {
		t.Fatal(err)
	}
	return p, x
}

// TestBoundIsTrueUpperBound: across kernels, the certificate must dominate
// the measured sup-norm error against the exact solution of the same
// problem — the contract that makes the exact-fallback logic sound.
func TestBoundIsTrueUpperBound(t *testing.T) {
	cases := []struct {
		name string
		kind kernel.Kind
		h    float64
	}{
		{"gaussian", kernel.Gaussian, 0.12},
		{"epanechnikov", kernel.Epanechnikov, 0.35},
		{"triangular", kernel.Triangular, 0.35},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, err := kernel.New(tc.kind, tc.h)
			if err != nil {
				t.Fatal(err)
			}
			p, x := testProblem(t, 2000, 40, k, 10, 7)
			res, err := SolveHard(p, x, Options{Kernel: k, Anchors: 300, Workers: 2})
			if err != nil {
				t.Fatalf("approx: %v", err)
			}
			if math.IsInf(res.Bound, 1) {
				t.Fatal("no certificate on a healthy covered problem")
			}
			exact, err := core.SolveHard(p)
			if err != nil {
				t.Fatal(err)
			}
			var actual float64
			for i, f := range res.FUnlabeled {
				if d := math.Abs(f - exact.FUnlabeled[i]); d > actual {
					actual = d
				}
			}
			if res.Bound < actual {
				t.Fatalf("bound %g < actual sup error %g", res.Bound, actual)
			}
			// The certificate must also be informative, not a vacuous
			// constant: demand it stay within a moderate factor of scale.
			if res.Bound > 50 {
				t.Fatalf("bound %g is vacuous for unit-scale responses (actual %g)", res.Bound, actual)
			}
			t.Logf("n=2000 anchors=%d bound=%.4g actual=%.4g levels=%d reduced=%v/%d barrier=%d",
				res.Anchors, res.Bound, actual, res.Levels, res.ReducedMethod, res.ReducedIterations, res.BarrierIterations)
		})
	}
}

// TestApproxDeterministicAcrossWorkers: scores, bound, and diagnostics are
// bitwise-identical for every worker count.
func TestApproxDeterministicAcrossWorkers(t *testing.T) {
	k, err := kernel.New(kernel.Gaussian, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p, x := testProblem(t, 1500, 30, k, 8, 11)
	var ref *Result
	for _, workers := range []int{1, 2, 5} {
		res, err := SolveHard(p, x, Options{Kernel: k, Anchors: 250, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Bound != ref.Bound || res.Anchors != ref.Anchors || res.Levels != ref.Levels {
			t.Fatalf("workers=%d: diagnostics differ: %+v vs %+v", workers, res, ref)
		}
		for i := range res.FUnlabeled {
			if res.FUnlabeled[i] != ref.FUnlabeled[i] {
				t.Fatalf("workers=%d: score %d differs", workers, i)
			}
		}
	}
}

// TestApproxRefusesSmallSystems: below the pay-off size and when the anchor
// budget defeats the purpose, the solver must signal ErrTooSmall so the
// caller runs the exact path.
func TestApproxRefusesSmallSystems(t *testing.T) {
	k, err := kernel.New(kernel.Gaussian, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p, x := testProblem(t, 600, 20, k, 8, 3)
	if _, err := SolveHard(p, x, Options{Kernel: k}); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("n=600: err = %v, want ErrTooSmall", err)
	}
	p2, x2 := testProblem(t, 1500, 30, k, 8, 3)
	if _, err := SolveHard(p2, x2, Options{Kernel: k, Anchors: 1200}); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("anchors≈n: err = %v, want ErrTooSmall", err)
	}
	if _, err := SolveHard(nil, nil, Options{Kernel: k}); !errors.Is(err, ErrParam) {
		t.Fatalf("nil problem: err = %v, want ErrParam", err)
	}
}

// TestHierarchyNestsAndRenumbersDensely: every level maps onto dense,
// first-appearance-ordered aggregate ids, and level sizes strictly shrink.
func TestHierarchyNestsAndRenumbersDensely(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([][]float64, 4000)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	tree, err := spatial.NewKDTree(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	unlabeled := make([]int, 0, len(x))
	for i := range x {
		if i%7 != 0 { // arbitrary labeled subset carved out
			unlabeled = append(unlabeled, i)
		}
	}
	h := buildHierarchy(tree, unlabeled)
	if len(h.assign) == 0 {
		t.Fatal("no hierarchy levels for 3428 unlabeled points")
	}
	units := len(unlabeled)
	for l, asg := range h.assign {
		if len(asg) != units {
			t.Fatalf("level %d: %d entries for %d units", l, len(asg), units)
		}
		seen := int32(0)
		for _, a := range asg {
			if a < 0 || a > seen {
				t.Fatalf("level %d: id %d breaks dense first-appearance order (seen %d)", l, a, seen)
			}
			if a == seen {
				seen++
			}
		}
		if int(seen) >= units {
			t.Fatalf("level %d: no reduction (%d -> %d)", l, units, seen)
		}
		units = int(seen)
	}
	if units > coarsestMax*coarsenFactor*2 {
		t.Fatalf("coarsest level still has %d aggregates", units)
	}
}

// TestZeroAllocBoundWarm: re-certifying updated scores on a warm Bounder —
// the serve-refit hot path — must not allocate.
func TestZeroAllocBoundWarm(t *testing.T) {
	k, err := kernel.New(kernel.Gaussian, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := testProblem(t, 1200, 24, k, 8, 9)
	sys, err := assembleSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	bd := newBounder(sys, nil, 1)
	f := make([]float64, sys.a.Rows())
	for i := range f {
		f[i] = float64(i%3) * 0.25
	}
	if b := bd.Bound(f); math.IsInf(b, 1) {
		t.Fatal("warm bound not certifiable")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if bd.Bound(f) < 0 {
			t.Fail()
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Bound allocates %v times", allocs)
	}
}

// TestAssembleSystemMatchesPropagationSystem: the COO-free assembly must
// reproduce core.BuildPropagationSystem's A = D − W22 and b exactly.
func TestAssembleSystemMatchesPropagationSystem(t *testing.T) {
	k, err := kernel.New(kernel.Epanechnikov, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := testProblem(t, 1100, 11, k, 9, 13)
	sys, err := assembleSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.BuildPropagationSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	if sys.a.Rows() != ref.M() {
		t.Fatalf("rows %d vs %d", sys.a.Rows(), ref.M())
	}
	for kk := range sys.b {
		if sys.b[kk] != ref.B[kk] {
			t.Fatalf("b[%d] = %v, want %v", kk, sys.b[kk], ref.B[kk])
		}
	}
	// A row check: A = D − W22 entrywise.
	for i := 0; i < sys.a.Rows(); i++ {
		cols, vals := sys.a.RowNNZ(i)
		for c, j := range cols {
			want := -ref.W.At(i, j)
			if j == i {
				want += ref.D[i]
			}
			if vals[c] != want {
				t.Fatalf("A[%d,%d] = %v, want %v", i, j, vals[c], want)
			}
		}
	}
}
