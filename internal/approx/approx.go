package approx

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/spatial"
)

// ErrTooSmall reports a system below the size where the anchor
// approximation can pay for itself; callers should run the exact path.
var ErrTooSmall = errors.New("approx: system too small to benefit from anchor approximation")

// ErrParam reports invalid solver parameters.
var ErrParam = errors.New("approx: invalid parameter")

const (
	// minN is the full-system size below which SolveHard refuses to run:
	// the exact solvers handle such systems in milliseconds.
	minN = 1024
	// defaultExtendK is the anchor truncation of the NW extension. The
	// top-k heap is the extension's hot loop, and the damped-Jacobi
	// polish afterwards contracts exactly the local error a short
	// truncation leaves behind, so a small k loses nothing that the
	// certificate would not measure anyway.
	defaultExtendK = 8
	// anchorScale, anchorMin and anchorMax shape the automatic anchor
	// budget m ≈ anchorScale·√n, the classical Nyström sizing where the
	// reduced solve is o(n) yet the aggregates stay spatially tight.
	anchorScale = 8
	anchorMin   = 256
	anchorMax   = 50000
	// reducedDenseCutoff caps the auto planner's dense tier for the
	// reduced solve: anchor systems are well-conditioned kNN graphs, so
	// IC(0)-PCG beats an O(m³) factorization well before the planner's
	// general-purpose 2048 cutoff.
	reducedDenseCutoff = 512
	// smoothSweeps damped-Jacobi sweeps polish the NW extension against
	// the full system before certification. The extension's error is
	// local (each point reads only nearby anchors), exactly the
	// high-frequency error Jacobi contracts fastest; each sweep is one
	// SpMV and shrinks the residual ‖b−Af̃‖∞ that multiplies the
	// certificate, so a handful of sweeps tightens the bound by an order
	// of magnitude for ~5% of the barrier solve's cost.
	smoothSweeps = 8
	// smoothOmega is the Jacobi damping; ρ(D⁻¹A) ≤ 2 on the hard
	// system's M-matrix, so ω = 0.6 keeps the iteration non-expansive
	// for every graph.
	smoothOmega = 0.6
)

// Options configures an approximate hard-criterion solve.
type Options struct {
	// Kernel is the similarity kernel; required, and should match the
	// kernel of the exact fit being approximated.
	Kernel *kernel.K
	// KNN bounds the reduced graph's connectivity (0 selects an automatic
	// choice; the reduced set is small enough that density is affordable).
	KNN int
	// Anchors targets the anchor count m (0 = automatic ≈ 8√n).
	Anchors int
	// ExtendK truncates the NW extension to the top-k anchors per point
	// (0 = default). The truncation error is folded into the bound.
	ExtendK int
	// Tol and MaxIter configure the reduced solve (0 = solver defaults).
	Tol     float64
	MaxIter int
	// Workers bounds parallelism; determinism never depends on it.
	Workers int
	// Ctx cancels the solve between stages and inside iterative loops.
	Ctx context.Context
}

// Result is an approximate hard-criterion solution with its certificate.
type Result struct {
	// FUnlabeled holds the approximate scores, aligned with
	// Problem.Unlabeled().
	FUnlabeled []float64
	// Bound is the computable sup-norm certificate:
	// ‖FUnlabeled − f*‖∞ ≤ Bound, where f* is the exact solution. +Inf
	// when no certificate exists (the caller must go exact).
	Bound float64
	// Anchors is the reduced system size (labels + aggregate
	// representatives); Levels the barrier hierarchy depth.
	Anchors int
	Levels  int
	// ReducedMethod/ReducedIterations report the reduced solve's backend.
	ReducedMethod     core.Method
	ReducedIterations int
	// BarrierIterations is the PCG work of the barrier certificate solve.
	BarrierIterations int
	// Isolated counts extension points with zero similarity mass to every
	// selected anchor; they score 0 and inflate the residual bound.
	Isolated int
	// Per-stage wall times of the pipeline (coarsening, reduced
	// build+solve, NW extension, certificate), for diagnostics and the
	// perfbench largen suite.
	TreeNs, ReducedNs, ExtendNs, CertifyNs int64
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// SolveHard approximates the hard criterion (Eq. 5) on problem p with
// coordinates x: it coarsens a KD-tree over all n points into m ≪ n
// spatial aggregates, solves the reduced hard system over the labels plus
// one representative per aggregate with the exact solver stack, extends
// the reduced scores to every unlabeled point with the truncated
// Nadaraya–Watson form (Eq. 6), and certifies the result with the
// M-matrix barrier bound. Everything is deterministic and bitwise-stable
// across worker counts. The returned Bound is a true upper bound on the
// sup-norm error against the exact solution of the SAME problem; an
// infinite bound means the approximation is not certifiable and the
// caller should run the exact path.
func SolveHard(p *core.Problem, x [][]float64, opt Options) (*Result, error) {
	if p == nil || opt.Kernel == nil {
		return nil, fmt.Errorf("approx: nil problem or kernel: %w", ErrParam)
	}
	n := p.Graph().N()
	if len(x) != n {
		return nil, fmt.Errorf("approx: %d coordinate rows for %d nodes: %w", len(x), n, ErrParam)
	}
	if n < minN {
		return nil, fmt.Errorf("%w: n=%d", ErrTooSmall, n)
	}
	nl := p.N()
	target := opt.Anchors
	if target <= 0 {
		target = anchorScale * int(math.Sqrt(float64(n)))
		if target < anchorMin {
			target = anchorMin
		}
		if target > anchorMax {
			target = anchorMax
		}
	}
	if nl+target > n/2 {
		return nil, fmt.Errorf("%w: %d labels + %d anchors against n=%d", ErrTooSmall, nl, target, n)
	}
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}

	// Stage 1: spatial coarsening. One KD-tree drives the anchor choice
	// here and the barrier hierarchy later.
	stageStart := time.Now()
	tree, err := spatial.NewKDTree(x, opt.Workers)
	if err != nil {
		return nil, err
	}
	maxSize := n / target
	if maxSize < 1 {
		maxSize = 1
	}
	coarse := tree.Coarsen(maxSize)

	// Stage 2: reduced point set = labels first (preserving the reduced
	// problem's labeled/unlabeled split), then every aggregate
	// representative that is not itself labeled.
	labeled := p.Labeled()
	anchorPos := make([]int32, n)
	for i := range anchorPos {
		anchorPos[i] = -1
	}
	xr := make([][]float64, 0, nl+len(coarse.Reps))
	for _, l := range labeled {
		anchorPos[l] = int32(len(xr))
		xr = append(xr, x[l])
	}
	for _, rep := range coarse.Reps {
		if anchorPos[rep] < 0 {
			anchorPos[rep] = int32(len(xr))
			xr = append(xr, x[int(rep)])
		}
	}
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}
	treeNs := time.Since(stageStart).Nanoseconds()
	stageStart = time.Now()

	// Stage 3: reduced graph + reduced exact solve. Anchor spacing is
	// ≈ coarsening-cell size, so a compact kernel can disconnect the
	// reduced graph; the resulting ErrIsolated surfaces to the caller,
	// which is the correct "not approximable at this bandwidth" signal.
	knn := opt.KNN
	if knn <= 0 && len(xr) > 1024 {
		knn = 16
	}
	bopts := []graph.Option{graph.WithWorkers(opt.Workers)}
	if knn > 0 {
		bopts = append(bopts, graph.WithKNN(knn))
	}
	builder, err := graph.NewBuilder(opt.Kernel, bopts...)
	if err != nil {
		return nil, err
	}
	rg, err := builder.Build(xr)
	if err != nil {
		return nil, err
	}
	labeledR := make([]int, nl)
	for i := range labeledR {
		labeledR[i] = i
	}
	redP, err := core.NewProblem(rg, labeledR, p.Y())
	if err != nil {
		return nil, err
	}
	// The auto planner's default dense cutoff (2048) is tuned for full
	// systems where a direct factorization beats an ill-conditioned CG; a
	// reduced anchor system of a few thousand rows is cheap for IC(0)-PCG
	// and an O(m³) dense Cholesky would dominate the whole approximate
	// solve, so lower the cutoff for the reduced solve only.
	sopts := []core.SolveOption{core.WithWorkers(opt.Workers), core.WithAutoCutoff(reducedDenseCutoff)}
	if opt.Tol > 0 {
		sopts = append(sopts, core.WithTolerance(opt.Tol))
	}
	if opt.MaxIter > 0 {
		sopts = append(sopts, core.WithMaxIter(opt.MaxIter))
	}
	if opt.Ctx != nil {
		sopts = append(sopts, core.WithContext(opt.Ctx))
	}
	rsol, err := core.SolveHard(redP, sopts...)
	if err != nil {
		return nil, err
	}
	reducedNs := time.Since(stageStart).Nanoseconds()
	stageStart = time.Now()

	// Stage 4: extend to all unlabeled points. Anchor nodes keep their
	// reduced scores; the rest get the truncated NW estimate over the
	// anchor set (anchors carry exact labels where labeled, reduced
	// scores elsewhere — the Delalleau evaluation form).
	sys, err := assembleSystem(p)
	if err != nil {
		return nil, err
	}
	extendK := opt.ExtendK
	if extendK <= 0 {
		extendK = defaultExtendK
	}
	pred, err := core.NewNWPredictor(xr, rsol.F, opt.Kernel, extendK, opt.Workers)
	if err != nil {
		return nil, err
	}
	m := len(sys.unlabeled)
	fU := make([]float64, m)
	qs := make([][]float64, 0, m)
	qRow := make([]int, 0, m)
	for k, u := range sys.unlabeled {
		if ap := anchorPos[u]; ap >= 0 {
			fU[k] = rsol.F[ap]
		} else {
			qs = append(qs, x[u])
			qRow = append(qRow, k)
		}
	}
	isolated := 0
	if len(qs) > 0 {
		dst := make([]float64, len(qs))
		status := make([]core.NWStatus, len(qs))
		pred.PredictBatchBounds(dst, status, nil, qs, opt.Workers, nil)
		for i, st := range status {
			if st == core.NWOK {
				fU[qRow[i]] = dst[i]
			} else {
				isolated++ // scores 0; the residual bound absorbs it
			}
		}
	}
	sys.smooth(fU, smoothSweeps, smoothOmega, opt.Workers)
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}
	extendNs := time.Since(stageStart).Nanoseconds()
	stageStart = time.Now()

	// Stage 5: certificate. The same coarsening that chose the anchors
	// preconditions the barrier solve through the multilevel hierarchy.
	h := buildHierarchy(tree, sys.unlabeled)
	bd := newBounder(sys, h, opt.Workers)
	bound := bd.Bound(fU)
	return &Result{
		FUnlabeled:        fU,
		Bound:             bound,
		Anchors:           len(xr),
		Levels:            len(h.assign),
		ReducedMethod:     rsol.Method,
		ReducedIterations: rsol.Iterations,
		BarrierIterations: bd.BarrierIterations,
		Isolated:          isolated,
		TreeNs:            treeNs,
		ReducedNs:         reducedNs,
		ExtendNs:          extendNs,
		CertifyNs:         time.Since(stageStart).Nanoseconds(),
	}, nil
}
