package approx

import (
	"math"

	"repro/internal/core"
	"repro/internal/precond"
	"repro/internal/sparse"
)

// barrierMargins is the pointwise acceptance ladder of the barrier solve.
// The barrier needs no correct digits at all: the bound uses the exact
// Ag (one SpMV), so a sloppy g merely loosens the certificate, it cannot
// invalidate it — and with right-hand side 1, any iterate whose pointwise
// residual stays below margin m satisfies Ag = 1 − r ≥ 1 − m > 0. The
// barrier PCG is the engine's single full-system solve and by far its
// dominant cost at large n, so instead of driving a 2-norm tolerance far
// past what the certificate needs, each rung stops PCG at the FIRST
// iterate whose recursion residual meets the margin (PCGOptions.Stop).
// freeze then re-validates against the exact Ag; recursion drift or a
// singular system fails that check and the next rung resumes warm, so a
// retry pays only the marginal iterations. The leading margin 0.75 keeps
// min(Ag) ≥ 0.25, costing at most 4x bound tightness versus an exact
// barrier — the certificate stays orders of magnitude away from vacuous
// while the barrier stops several PCG iterations sooner.
var barrierMargins = [...]float64{0.75, 0.5, 0.25}

// barrierMaxIter caps barrier PCG iterations per ladder rung; exhausting
// the ladder degrades to an infinite bound (exact fallback), never a
// wrong one. barrierTol is the 2-norm backstop under the pointwise stop.
const (
	barrierMaxIter = 1000
	barrierTol     = 1e-3
)

// system is the hard-criterion linear system A f_U = b with A = D − W22,
// assembled in one O(nnz) pass directly from the graph's CSR rows — no
// intermediate COO sort, which dominates assembly time at n in the
// millions. Unlabeled node indices are ascending, so the position map is
// monotone and every mapped row stays column-sorted.
type system struct {
	a *sparse.CSR
	b []float64
	// unlabeled maps row k back to its node index.
	unlabeled []int
}

// assembleSystem extracts A and b from the problem. It checks positive
// degrees (the estimator is undefined on isolated nodes) but not component
// coverage: a label-free component makes A singular, which the barrier
// certificate detects a posteriori (infinite bound) at no extra cost.
func assembleSystem(p *core.Problem) (*system, error) {
	w := p.Graph().Weights()
	unlabeled := p.Unlabeled()
	labeled := p.Labeled()
	y := p.Y()
	m := len(unlabeled)

	pos := make([]int32, p.Graph().N())
	for i := range pos {
		pos[i] = -1
	}
	for k, u := range unlabeled {
		pos[u] = int32(k)
	}
	yAt := make([]float64, len(pos))
	for k, l := range labeled {
		yAt[l] = y[k]
	}

	// Pass 1: exact row counts. Row k of A holds the diagonal plus one
	// entry per unlabeled neighbour (self-loops fold into the diagonal).
	indptr := make([]int, m+1)
	for k, u := range unlabeled {
		cols, _ := w.RowNNZ(u)
		cnt := 1
		for _, j := range cols {
			if pos[j] >= 0 && j != u {
				cnt++
			}
		}
		indptr[k+1] = indptr[k] + cnt
	}

	// Pass 2: fill. deg is accumulated per row on the fly (identical
	// left-to-right order as CSR.RowSums, so degrees are bitwise-stable).
	indices := make([]int, indptr[m])
	data := make([]float64, indptr[m])
	b := make([]float64, m)
	for k, u := range unlabeled {
		cols, vals := w.RowNNZ(u)
		var deg, self float64
		for c, j := range cols {
			deg += vals[c]
			switch {
			case j == u:
				self += vals[c]
			case pos[j] < 0:
				b[k] += vals[c] * yAt[j]
			}
		}
		if deg == 0 {
			return nil, core.ErrIsolated
		}
		at := indptr[k]
		diagDone := false
		diag := deg - self
		for c, j := range cols {
			if j == u || pos[j] < 0 {
				continue
			}
			if !diagDone && int(pos[j]) > k {
				indices[at] = k
				data[at] = diag
				at++
				diagDone = true
			}
			indices[at] = int(pos[j])
			data[at] = -vals[c]
			at++
		}
		if !diagDone {
			indices[at] = k
			data[at] = diag
		}
	}
	a, err := sparse.NewCSR(m, m, indptr, indices, data)
	if err != nil {
		return nil, err
	}
	return &system{a: a, b: b, unlabeled: unlabeled}, nil
}

// smooth polishes candidate unlabeled scores in place with damped-Jacobi
// sweeps f ← f + ωD⁻¹(b − Af). The result is bitwise-stable across worker
// counts (the SpMV is, and the update is a fixed serial loop). Sweeps on
// the hard system's M-matrix with ω ≤ 1 are non-expansive, so they can
// only move f toward the exact solution.
func (s *system) smooth(f []float64, sweeps int, omega float64, workers int) {
	m := s.a.Rows()
	diag := make([]float64, m)
	for k := 0; k < m; k++ {
		cols, vals := s.a.RowNNZ(k)
		for c, j := range cols {
			if j == k {
				diag[k] = vals[c]
				break
			}
		}
	}
	work := make([]float64, m)
	for sw := 0; sw < sweeps; sw++ {
		if s.a.MulVecToWorkers(work, f, workers) != nil {
			return
		}
		for i := range f {
			if diag[i] > 0 {
				f[i] += omega * (s.b[i] - work[i]) / diag[i]
			}
		}
	}
}

// Bounder certifies approximate solutions of one hard-criterion system with
// a computable sup-norm error bound. A = D − W22 is a symmetric M-matrix
// (SPD with non-positive off-diagonals), so A⁻¹ ≥ 0 elementwise; for any
// barrier vector g with s = Ag strictly positive,
//
//	‖f̃ − f*‖∞ ≤ ‖b − A f̃‖∞ · ‖g‖∞ / min(Ag),
//
// because |f*−f̃| = |A⁻¹ r| ≤ ‖r‖∞ · A⁻¹1 ≤ ‖r‖∞ · A⁻¹(Ag)/min(Ag).
// The bound needs one SpMV per evaluation and holds for ANY g — solver
// inaccuracy in the barrier loosens it but never falsifies it. When no
// valid barrier exists (singular or non-covered system) Bound returns +Inf
// and the caller falls back to the exact path.
type Bounder struct {
	sys *system
	// g is the barrier; nil when the barrier solve failed.
	g []float64
	// gInf is ‖g‖∞; c is min(Ag), computed with an exact SpMV.
	gInf, c float64
	// work is the SpMV scratch, reused across Bound calls.
	work []float64
	// BarrierIterations reports the PCG work of the barrier solve.
	BarrierIterations int
	workers           int
}

// newBounder solves A g = 1 to loose tolerance, preconditioned by the
// multilevel hierarchy when one is available (h may be nil), and freezes
// the certificate constants.
func newBounder(sys *system, h *hierarchy, workers int) *Bounder {
	m := sys.a.Rows()
	bd := &Bounder{sys: sys, work: make([]float64, m), workers: workers}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	var pc sparse.Preconditioner
	if h != nil && len(h.assign) > 0 {
		if ml, err := precond.NewMLAssigned(sys.a, h.assign); err == nil {
			pc = ml
		}
	}
	if pc == nil {
		if p, err := precond.Auto(sys.a); err == nil {
			pc = p
		}
	}
	var warm []float64
	for _, margin := range barrierMargins {
		g, res, err := sparse.PCG(sys.a, ones, sparse.PCGOptions{
			CGOptions: sparse.CGOptions{Tol: barrierTol, MaxIter: barrierMaxIter, Workers: workers, X0: warm},
			M:         pc,
			Stop: func(_, r []float64) bool {
				for _, ri := range r {
					if ri > margin || ri < -margin {
						return false
					}
				}
				return true
			},
		})
		bd.BarrierIterations += res.Iterations
		if err != nil || g == nil {
			return bd // no barrier: Bound reports +Inf, caller goes exact
		}
		warm = g
		if bd.freeze(g, workers) {
			return bd
		}
	}
	return bd // ladder exhausted: Bound reports +Inf, caller goes exact
}

// freeze validates candidate barrier g against the exact Ag (one SpMV,
// never the solver's residual estimate) and locks in the certificate
// constants on success.
func (bd *Bounder) freeze(g []float64, workers int) bool {
	if bd.sys.a.MulVecToWorkers(bd.work, g, workers) != nil {
		return false
	}
	c := math.Inf(1)
	var gInf float64
	for i, gi := range g {
		if !(gi > 0) {
			return false // barrier must be strictly positive
		}
		if gi > gInf {
			gInf = gi
		}
		if bd.work[i] < c {
			c = bd.work[i]
		}
	}
	if !(c > 0) || math.IsInf(gInf, 1) {
		return false
	}
	bd.g, bd.gInf, bd.c = g, gInf, c
	return true
}

// Bound evaluates the certificate for the candidate unlabeled scores f
// (aligned with the system's unlabeled positions): one SpMV plus one
// sweep, allocation-free on the warm path. It returns +Inf when no valid
// barrier exists or f is not finite.
func (bd *Bounder) Bound(f []float64) float64 {
	if bd.g == nil || len(f) != len(bd.work) {
		return math.Inf(1)
	}
	if bd.sys.a.MulVecToWorkers(bd.work, f, bd.workers) != nil {
		return math.Inf(1)
	}
	var rInf float64
	for i := range bd.work {
		r := bd.sys.b[i] - bd.work[i]
		if r < 0 {
			r = -r
		}
		if r > rInf {
			rInf = r
		}
	}
	if math.IsNaN(rInf) || math.IsInf(rInf, 0) {
		return math.Inf(1)
	}
	return rInf * bd.gInf / bd.c
}
