// Package approx is the approximate large-n engine: a Nyström /
// anchor-subset solver for the hard criterion (Eq. 5) that solves a
// reduced system over m ≪ n anchor points chosen by hierarchical
// coarsening of a KD-tree, extends the solution to all n points with the
// Nadaraya–Watson form (Eq. 6, the Delalleau-style evaluation the serve
// package already uses), and certifies the result with a computable
// a-posteriori sup-norm error bound. Every answer either carries a finite
// bound or the caller falls back to the exact path — the engine never
// silently degrades accuracy.
package approx

import (
	"repro/internal/spatial"
)

// hierarchy holds the nested aggregate structure of the unlabeled system:
// level 0 maps each unlabeled position to its finest spatial aggregate,
// level l maps level-l aggregates to level-(l+1) aggregates. The same
// structure feeds both the Nyström anchor choice (level-0 representatives)
// and the multilevel preconditioner of the barrier solve, so one KD
// coarsening pays for both.
type hierarchy struct {
	// assign[l] maps a level-l unit to its level-(l+1) aggregate, with
	// dense ids; assign[0] has one entry per unlabeled position.
	assign [][]int32
}

const (
	// coarsenBase is the first KD cut threshold of the hierarchy —
	// leaf-scale aggregates, so the finest preconditioner level keeps a
	// healthy (single-digit) reduction ratio.
	coarsenBase = 8
	// coarsenFactor grows the KD cut threshold between hierarchy levels.
	coarsenFactor = 4
	// coarsestMax stops the hierarchy once a level has at most this many
	// aggregates (the multilevel preconditioner factors such levels
	// densely anyway).
	coarsestMax = 256
	// maxLevels caps the hierarchy depth.
	maxLevels = 10
)

// buildHierarchy derives the nested unlabeled-system aggregation from
// successive KD coarsenings at geometrically growing size thresholds.
// unlabeled lists the node indices of the system rows. Determinism: the
// tree layout, the cut, and the first-appearance renumbering are all pure
// functions of the input.
func buildHierarchy(tree *spatial.KDTree, unlabeled []int) *hierarchy {
	h := &hierarchy{}
	// nodeOf[j] is a member node index of unit j at the current level; for
	// level 0 the units are the unlabeled positions themselves. Nesting of
	// the KD cuts guarantees any member represents its aggregate.
	nodeOf := make([]int32, len(unlabeled))
	for k, u := range unlabeled {
		nodeOf[k] = int32(u)
	}
	size := coarsenBase
	for level := 0; level < maxLevels && len(nodeOf) > coarsestMax; level++ {
		c := tree.Coarsen(size)
		// Dense renumbering in first-appearance order over the current
		// units (aggregates holding no current unit get no id).
		dense := make(map[int32]int32, len(nodeOf)/coarsenFactor+1)
		cur := make([]int32, len(nodeOf))
		var nextNode []int32
		for j, node := range nodeOf {
			raw := c.Assign[node]
			id, ok := dense[raw]
			if !ok {
				id = int32(len(nextNode))
				dense[raw] = id
				nextNode = append(nextNode, node)
			}
			cur[j] = id
		}
		if len(nextNode) >= len(nodeOf) {
			size *= coarsenFactor
			continue // no reduction at this threshold; try a coarser cut
		}
		h.assign = append(h.assign, cur)
		nodeOf = nextNode
		size *= coarsenFactor
	}
	return h
}
