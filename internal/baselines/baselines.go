// Package baselines implements the comparators used by the extension
// experiments: a k-nearest-neighbour predictor, ridge-stabilized logistic
// regression fitted by iteratively reweighted least squares (the classic
// supervised baseline for the paper's synthetic logits), and the label
// spreading method of Zhou et al. (2004) — the normalized-Laplacian
// relative of the paper's soft criterion, cited as reference [12] there.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/sparse"
)

var (
	// ErrParam is returned for invalid inputs.
	ErrParam = errors.New("baselines: invalid parameter")
	// ErrNotConverged is returned when IRLS exhausts its iterations.
	ErrNotConverged = errors.New("baselines: did not converge")
)

// KNNPredict predicts scores for the unlabeled points as the mean response
// of the k nearest labeled neighbours (Euclidean). It returns the scores
// and the ascending unlabeled index list they align with.
func KNNPredict(x [][]float64, labeled []int, y []float64, k int) ([]float64, []int, error) {
	n := len(x)
	if n == 0 {
		return nil, nil, fmt.Errorf("baselines: no points: %w", ErrParam)
	}
	if len(labeled) == 0 || len(labeled) != len(y) {
		return nil, nil, fmt.Errorf("baselines: labeled/response mismatch: %w", ErrParam)
	}
	if k < 1 || k > len(labeled) {
		return nil, nil, fmt.Errorf("baselines: k=%d with %d labeled: %w", k, len(labeled), ErrParam)
	}
	isLab := make([]bool, n)
	for _, idx := range labeled {
		if idx < 0 || idx >= n {
			return nil, nil, fmt.Errorf("baselines: labeled index %d: %w", idx, ErrParam)
		}
		if isLab[idx] {
			return nil, nil, fmt.Errorf("baselines: duplicate labeled index %d: %w", idx, ErrParam)
		}
		isLab[idx] = true
	}
	var unlabeled []int
	for i := 0; i < n; i++ {
		if !isLab[i] {
			unlabeled = append(unlabeled, i)
		}
	}
	if len(unlabeled) == 0 {
		return nil, nil, fmt.Errorf("baselines: nothing to predict: %w", ErrParam)
	}

	type cand struct {
		d2 float64
		y  float64
	}
	out := make([]float64, len(unlabeled))
	cands := make([]cand, len(labeled))
	for ui, u := range unlabeled {
		for li, l := range labeled {
			cands[li] = cand{d2: mat.Dist2(x[u], x[l]), y: y[li]}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
		var s float64
		for i := 0; i < k; i++ {
			s += cands[i].y
		}
		out[ui] = s / float64(k)
	}
	return out, unlabeled, nil
}

// Logistic is a fitted logistic-regression model over raw features plus an
// intercept.
type Logistic struct {
	// Coef holds the intercept followed by one coefficient per feature.
	Coef []float64
	// Iterations is the number of IRLS steps taken.
	Iterations int
}

// LogisticOptions tunes the IRLS fit.
type LogisticOptions struct {
	// Ridge is the ℓ2 stabilizer added to the normal equations;
	// default 1e-6 (also rescues separable data).
	Ridge float64
	// Tol is the coefficient-change tolerance; default 1e-8.
	Tol float64
	// MaxIter caps Newton steps; default 100.
	MaxIter int
}

func (o *LogisticOptions) fill() {
	if o.Ridge <= 0 {
		o.Ridge = 1e-6
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
}

// FitLogistic fits P(Y=1|x) = σ(β₀ + βᵀx) to the rows of x with binary
// responses y by iteratively reweighted least squares.
func FitLogistic(x [][]float64, y []float64, opts LogisticOptions) (*Logistic, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("baselines: logistic needs aligned x/y: %w", ErrParam)
	}
	d := len(x[0])
	for i, xi := range x {
		if len(xi) != d {
			return nil, fmt.Errorf("baselines: row %d dim %d, want %d: %w", i, len(xi), d, ErrParam)
		}
	}
	for _, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("baselines: logistic label %v not in {0,1}: %w", v, ErrParam)
		}
	}
	opts.fill()

	p := d + 1
	design := mat.NewDense(n, p)
	for i, xi := range x {
		design.Set(i, 0, 1)
		for j, v := range xi {
			design.Set(i, j+1, v)
		}
	}

	beta := make([]float64, p)
	eta := make([]float64, n)
	mu := make([]float64, n)
	wz := make([]float64, n)
	for it := 0; it < opts.MaxIter; it++ {
		if err := mat.MulVecTo(eta, design, beta); err != nil {
			return nil, err
		}
		for i := range mu {
			mu[i] = randx.Logistic(eta[i])
		}
		// Weighted normal equations: (Xᵀ W X + ridge·I) δβ-target uses the
		// working response z = η + (y−μ)/w with w = μ(1−μ).
		xtwx := mat.NewDense(p, p)
		for i := 0; i < n; i++ {
			w := mu[i] * (1 - mu[i])
			if w < 1e-10 {
				w = 1e-10
			}
			z := eta[i] + (y[i]-mu[i])/w
			wz[i] = w * z
			row := design.RawRow(i)
			for a := 0; a < p; a++ {
				va := row[a] * w
				if va == 0 {
					continue
				}
				for b := a; b < p; b++ {
					xtwx.Set(a, b, xtwx.At(a, b)+va*row[b])
				}
			}
		}
		for a := 0; a < p; a++ {
			xtwx.Set(a, a, xtwx.At(a, a)+opts.Ridge)
			for b := 0; b < a; b++ {
				xtwx.Set(a, b, xtwx.At(b, a))
			}
		}
		rhs, err := mat.MulTVec(design, wz)
		if err != nil {
			return nil, err
		}
		next, err := mat.SolveSPD(xtwx, rhs)
		if err != nil {
			return nil, fmt.Errorf("baselines: IRLS solve: %w", err)
		}
		delta := mat.NormInf(mat.SubVec(next, beta))
		beta = next
		if delta <= opts.Tol*(1+mat.NormInf(beta)) {
			return &Logistic{Coef: beta, Iterations: it + 1}, nil
		}
	}
	return &Logistic{Coef: beta, Iterations: opts.MaxIter}, ErrNotConverged
}

// Predict returns P(Y=1|x) for each row of x.
func (l *Logistic) Predict(x [][]float64) ([]float64, error) {
	d := len(l.Coef) - 1
	out := make([]float64, len(x))
	for i, xi := range x {
		if len(xi) != d {
			return nil, fmt.Errorf("baselines: predict row %d dim %d, want %d: %w", i, len(xi), d, ErrParam)
		}
		eta := l.Coef[0]
		for j, v := range xi {
			eta += l.Coef[j+1] * v
		}
		out[i] = randx.Logistic(eta)
	}
	return out, nil
}

// LabelSpread runs Zhou et al.'s label spreading: it computes
// F = (1−α)(I − αS)^{-1} Y_in with S = D^{-1/2} W D^{-1/2} and Y_in equal
// to y on labeled nodes and 0 elsewhere, returning the scores on the
// unlabeled nodes (ascending index order, second return value). α must lie
// in (0,1); I − αS is then positive definite and conjugate gradient
// applies.
func LabelSpread(g *graph.Graph, labeled []int, y []float64, alpha float64) ([]float64, []int, error) {
	if g == nil {
		return nil, nil, fmt.Errorf("baselines: nil graph: %w", ErrParam)
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, nil, fmt.Errorf("baselines: alpha=%v outside (0,1): %w", alpha, ErrParam)
	}
	n := g.N()
	if len(labeled) == 0 || len(labeled) != len(y) {
		return nil, nil, fmt.Errorf("baselines: labeled/response mismatch: %w", ErrParam)
	}
	isLab := make([]bool, n)
	yIn := make([]float64, n)
	for i, idx := range labeled {
		if idx < 0 || idx >= n {
			return nil, nil, fmt.Errorf("baselines: labeled index %d: %w", idx, ErrParam)
		}
		if isLab[idx] {
			return nil, nil, fmt.Errorf("baselines: duplicate labeled index %d: %w", idx, ErrParam)
		}
		isLab[idx] = true
		yIn[idx] = y[i]
	}

	// I − αS equals the symmetric normalized Laplacian scaled into
	// I − αS = (1−α)I + α·L_sym.
	lsym, err := g.Laplacian(graph.SymNormalized)
	if err != nil {
		return nil, nil, err
	}
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		if err := coo.Add(i, i, 1-alpha); err != nil {
			return nil, nil, err
		}
		cols, vals := lsym.RowNNZ(i)
		for k, j := range cols {
			if err := coo.Add(i, j, alpha*vals[k]); err != nil {
				return nil, nil, err
			}
		}
	}
	a := coo.ToCSR()
	f, _, err := sparse.CG(a, yIn, sparse.CGOptions{Tol: 1e-10})
	if err != nil {
		return nil, nil, fmt.Errorf("baselines: label spreading solve: %w", err)
	}
	var unlabeled []int
	var out []float64
	for i := 0; i < n; i++ {
		if !isLab[i] {
			unlabeled = append(unlabeled, i)
			out = append(out, (1-alpha)*f[i])
		}
	}
	if len(unlabeled) == 0 {
		return nil, nil, fmt.Errorf("baselines: nothing to predict: %w", ErrParam)
	}
	return out, unlabeled, nil
}
