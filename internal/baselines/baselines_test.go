package baselines

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
)

func TestKNNPredictKnown(t *testing.T) {
	x := [][]float64{{0}, {1}, {10}, {0.4}}
	labeled := []int{0, 1, 2}
	y := []float64{1, 0, 5}
	scores, unl, err := KNNPredict(x, labeled, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(unl) != 1 || unl[0] != 3 {
		t.Fatalf("unlabeled = %v", unl)
	}
	// Two nearest labeled to 0.4 are x=0 (y=1) and x=1 (y=0) → mean 0.5.
	if scores[0] != 0.5 {
		t.Fatalf("score = %v, want 0.5", scores[0])
	}
}

func TestKNNPredictK1ExactNeighbour(t *testing.T) {
	x := [][]float64{{0}, {5}, {0.2}, {4.9}}
	scores, unl, err := KNNPredict(x, []int{0, 1}, []float64{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if unl[0] != 2 || unl[1] != 3 {
		t.Fatalf("unlabeled = %v", unl)
	}
	if scores[0] != 1 || scores[1] != 0 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestKNNPredictValidation(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	tests := []struct {
		name    string
		labeled []int
		y       []float64
		k       int
	}{
		{"empty labeled", nil, nil, 1},
		{"mismatch", []int{0}, []float64{1, 2}, 1},
		{"k too large", []int{0, 1}, []float64{1, 0}, 3},
		{"k zero", []int{0, 1}, []float64{1, 0}, 0},
		{"bad index", []int{9}, []float64{1}, 1},
		{"dup index", []int{0, 0}, []float64{1, 1}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := KNNPredict(x, tt.labeled, tt.y, tt.k); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
	if _, _, err := KNNPredict(nil, []int{0}, []float64{1}, 1); !errors.Is(err, ErrParam) {
		t.Fatal("no points must error")
	}
	if _, _, err := KNNPredict(x[:1], []int{0}, []float64{1}, 1); !errors.Is(err, ErrParam) {
		t.Fatal("all labeled must error")
	}
}

func TestFitLogisticRecoverCoefficients(t *testing.T) {
	// Generate from a known logistic model and recover β approximately.
	rng := randx.New(401)
	trueBeta := []float64{-0.5, 2, -1}
	n := 4000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Norm(), rng.Norm()}
		eta := trueBeta[0] + trueBeta[1]*x[i][0] + trueBeta[2]*x[i][1]
		y[i] = rng.Bernoulli(randx.Logistic(eta))
	}
	model, err := FitLogistic(x, y, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range trueBeta {
		if math.Abs(model.Coef[j]-want) > 0.2 {
			t.Fatalf("coef[%d] = %v, want ≈ %v", j, model.Coef[j], want)
		}
	}
	if model.Iterations < 1 {
		t.Fatal("iterations not reported")
	}
}

func TestLogisticPredictRange(t *testing.T) {
	model := &Logistic{Coef: []float64{0, 1}}
	p, err := model.Predict([][]float64{{-100}, {0}, {100}})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] > 1e-10 || p[1] != 0.5 || p[2] < 1-1e-10 {
		t.Fatalf("predictions = %v", p)
	}
	if _, err := model.Predict([][]float64{{1, 2}}); !errors.Is(err, ErrParam) {
		t.Fatal("dim mismatch must error")
	}
}

func TestFitLogisticValidation(t *testing.T) {
	if _, err := FitLogistic(nil, nil, LogisticOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("empty must error")
	}
	if _, err := FitLogistic([][]float64{{1}}, []float64{2}, LogisticOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("non-binary label must error")
	}
	if _, err := FitLogistic([][]float64{{1}, {1, 2}}, []float64{0, 1}, LogisticOptions{}); !errors.Is(err, ErrParam) {
		t.Fatal("ragged rows must error")
	}
}

func TestFitLogisticSeparableDataStabilized(t *testing.T) {
	// Perfectly separable data: ridge keeps IRLS finite; predictions are
	// still on the right side.
	x := [][]float64{{-2}, {-1}, {1}, {2}}
	y := []float64{0, 0, 1, 1}
	model, err := FitLogistic(x, y, LogisticOptions{Ridge: 1e-3, MaxIter: 200})
	if err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	p, err := model.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] > 0.5 || p[3] < 0.5 {
		t.Fatalf("separable fit misclassifies: %v", p)
	}
	for _, v := range model.Coef {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("coefficient blew up: %v", model.Coef)
		}
	}
}

func clusterGraph(t *testing.T, seed int64, n int) (*graph.Graph, [][]float64, []float64) {
	t.Helper()
	rng := randx.New(seed)
	x := make([][]float64, n)
	truth := make([]float64, n)
	for i := range x {
		if i%2 == 0 {
			x[i] = []float64{rng.Norm()*0.3 - 2, rng.Norm() * 0.3}
			truth[i] = 1
		} else {
			x[i] = []float64{rng.Norm()*0.3 + 2, rng.Norm() * 0.3}
		}
	}
	b, err := graph.NewBuilder(kernel.MustNew(kernel.Gaussian, 1))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	return g, x, truth
}

func TestLabelSpreadTwoClusters(t *testing.T) {
	g, _, truth := clusterGraph(t, 403, 40)
	labeled := []int{0, 1, 2, 3}
	y := truth[:4]
	scores, unl, err := LabelSpread(g, labeled, y, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 36 || len(unl) != 36 {
		t.Fatal("output shape wrong")
	}
	gotTruth := make([]float64, len(unl))
	for i, idx := range unl {
		gotTruth[i] = truth[idx]
	}
	auc, err := stats.AUC(scores, gotTruth)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.99 {
		t.Fatalf("label spreading AUC = %v on separable clusters", auc)
	}
}

func TestLabelSpreadValidation(t *testing.T) {
	g, _, truth := clusterGraph(t, 405, 10)
	if _, _, err := LabelSpread(nil, []int{0}, []float64{1}, 0.5); !errors.Is(err, ErrParam) {
		t.Fatal("nil graph must error")
	}
	for _, a := range []float64{0, 1, -0.5, math.NaN()} {
		if _, _, err := LabelSpread(g, []int{0}, []float64{1}, a); !errors.Is(err, ErrParam) {
			t.Fatalf("alpha=%v must error", a)
		}
	}
	if _, _, err := LabelSpread(g, nil, nil, 0.5); !errors.Is(err, ErrParam) {
		t.Fatal("no labels must error")
	}
	if _, _, err := LabelSpread(g, []int{99}, []float64{1}, 0.5); !errors.Is(err, ErrParam) {
		t.Fatal("bad index must error")
	}
	if _, _, err := LabelSpread(g, []int{0, 0}, []float64{1, 1}, 0.5); !errors.Is(err, ErrParam) {
		t.Fatal("dup index must error")
	}
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if _, _, err := LabelSpread(g, all, truth, 0.5); !errors.Is(err, ErrParam) {
		t.Fatal("all labeled must error")
	}
}

func TestLabelSpreadAlphaLimitSmall(t *testing.T) {
	// As α → 0, (I−αS)F = Y gives F → Y: unlabeled scores → 0.
	g, _, truth := clusterGraph(t, 407, 14)
	scores, _, err := LabelSpread(g, []int{0, 1}, truth[:2], 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if math.Abs(s) > 0.1 {
			t.Fatalf("small-α score %v should be near 0", s)
		}
	}
}
