// Package randx supplies the deterministic random-variate machinery the
// experiments need: seeded RNGs, multivariate normal sampling via Cholesky
// factors, the paper's truncated multivariate normal input distribution,
// Bernoulli responses, permutations, and k-fold split generators.
package randx

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

var (
	// ErrParam is returned for invalid distribution parameters.
	ErrParam = errors.New("randx: invalid parameter")
)

// RNG wraps math/rand with convenience samplers. All experiment code draws
// randomness through an explicit *RNG so every figure is reproducible from a
// seed.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded deterministically.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Norm returns a standard normal variate.
func (g *RNG) Norm() float64 { return g.r.NormFloat64() }

// NormVec fills a length-n slice with standard normal variates.
func (g *RNG) NormVec(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.r.NormFloat64()
	}
	return out
}

// Bernoulli returns 1 with probability p, else 0.
func (g *RNG) Bernoulli(p float64) float64 {
	if g.r.Float64() < p {
		return 1
	}
	return 0
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes idx in place.
func (g *RNG) Shuffle(idx []int) {
	g.r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Split derives an independent child RNG; used to fan replications out so
// each replicate is reproducible in isolation.
func (g *RNG) Split() *RNG {
	return New(g.r.Int63())
}

// MVN is a multivariate normal sampler N(mu, Sigma) backed by the Cholesky
// factor of Sigma.
type MVN struct {
	mu []float64
	l  *mat.Dense
}

// NewMVN constructs the sampler; Sigma must be symmetric positive definite.
func NewMVN(mu []float64, sigma *mat.Dense) (*MVN, error) {
	r, c := sigma.Dims()
	if r != c || r != len(mu) {
		return nil, fmt.Errorf("randx: MVN dims mu=%d sigma=%dx%d: %w", len(mu), r, c, ErrParam)
	}
	ch, err := mat.NewCholesky(sigma)
	if err != nil {
		return nil, fmt.Errorf("randx: sigma not SPD: %w", err)
	}
	return &MVN{mu: mat.CloneVec(mu), l: ch.L()}, nil
}

// Dim returns the dimension of the distribution.
func (m *MVN) Dim() int { return len(m.mu) }

// Sample draws one variate: mu + L z with z ~ N(0, I).
func (m *MVN) Sample(g *RNG) []float64 {
	z := g.NormVec(len(m.mu))
	x, err := mat.MulVec(m.l, z)
	if err != nil {
		// Impossible by construction: L is square of matching size.
		panic(err)
	}
	for i := range x {
		x[i] += m.mu[i]
	}
	return x
}

// SampleN draws n variates as rows.
func (m *MVN) SampleN(g *RNG, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = m.Sample(g)
	}
	return out
}

// PaperTruncatedMVN is the input distribution of the paper's synthetic
// studies: X̃ ~ N(mu, Sigma) with each coordinate k replaced by 0 whenever
// X̃_k falls outside [0,1]. (The paper keeps X̃_k when it is in [0,1] and
// zeroes it otherwise — a censoring rule, not a rejection sampler.)
type PaperTruncatedMVN struct {
	mvn *MVN
}

// NewPaperTruncatedMVN builds the distribution with the paper's parameters
// for dimension p: mean (0.5,…,0.5) and covariance 0.05·(I + 1 1ᵀ) with
// diagonal 0.1 (i.e. off-diagonal 0.05, diagonal 0.1).
func NewPaperTruncatedMVN(p int) (*PaperTruncatedMVN, error) {
	if p < 1 {
		return nil, fmt.Errorf("randx: dimension %d: %w", p, ErrParam)
	}
	mu := mat.Constant(p, 0.5)
	sigma := mat.NewDense(p, p)
	sigma.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0.10
		}
		return 0.05
	})
	mvn, err := NewMVN(mu, sigma)
	if err != nil {
		return nil, err
	}
	return &PaperTruncatedMVN{mvn: mvn}, nil
}

// Dim returns the dimension p.
func (d *PaperTruncatedMVN) Dim() int { return d.mvn.Dim() }

// Sample draws one censored variate.
func (d *PaperTruncatedMVN) Sample(g *RNG) []float64 {
	x := d.mvn.Sample(g)
	for k, v := range x {
		if v < 0 || v > 1 {
			x[k] = 0
		}
	}
	return x
}

// SampleN draws n censored variates as rows.
func (d *PaperTruncatedMVN) SampleN(g *RNG, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = d.Sample(g)
	}
	return out
}

// Logistic returns the logistic sigmoid 1/(1+e^{−t}).
func Logistic(t float64) float64 {
	// Numerically stable on both tails.
	if t >= 0 {
		z := math.Exp(-t)
		return 1 / (1 + z)
	}
	z := math.Exp(t)
	return z / (1 + z)
}

// KFold partitions [0,n) into k random folds of near-equal size
// (sizes differ by at most one). It returns the folds as index slices.
func KFold(g *RNG, n, k int) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("randx: KFold(n=%d, k=%d): %w", n, k, ErrParam)
	}
	perm := g.Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	return folds, nil
}

// SplitLabeled splits [0,n) into a labeled set of size nLabeled and the
// complementary unlabeled set, uniformly at random.
func SplitLabeled(g *RNG, n, nLabeled int) (labeled, unlabeled []int, err error) {
	if nLabeled < 1 || nLabeled >= n {
		return nil, nil, fmt.Errorf("randx: SplitLabeled(n=%d, labeled=%d): %w", n, nLabeled, ErrParam)
	}
	perm := g.Perm(n)
	return perm[:nLabeled], perm[nLabeled:], nil
}
