package randx

import (
	"errors"
	"math"
	"testing"
)

func TestStratifiedSplitProportions(t *testing.T) {
	// 60 points: 30 class 0, 20 class 1, 10 class 2; request 12 labeled
	// ⇒ expect 6 / 4 / 2.
	labels := make([]int, 60)
	for i := 30; i < 50; i++ {
		labels[i] = 1
	}
	for i := 50; i < 60; i++ {
		labels[i] = 2
	}
	g := New(91)
	lab, unl, err := StratifiedSplit(g, labels, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab) != 12 || len(unl) != 48 {
		t.Fatalf("sizes %d/%d", len(lab), len(unl))
	}
	count := map[int]int{}
	for _, idx := range lab {
		count[labels[idx]]++
	}
	if count[0] != 6 || count[1] != 4 || count[2] != 2 {
		t.Fatalf("class allocation %v", count)
	}
}

func TestStratifiedSplitNoOverlapFullCover(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	g := New(93)
	lab, unl, err := StratifiedSplit(g, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range append(append([]int{}, lab...), unl...) {
		if seen[v] {
			t.Fatalf("index %d appears twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatal("indices lost")
	}
}

func TestStratifiedSplitEveryClassRepresented(t *testing.T) {
	// Small labeled budget: largest-remainder must still give each sizable
	// class at least proportional share; with three balanced classes and
	// budget 3 each class gets exactly one.
	labels := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	g := New(95)
	lab, _, err := StratifiedSplit(g, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, idx := range lab {
		got[labels[idx]] = true
	}
	if len(got) != 3 {
		t.Fatalf("classes covered: %v", got)
	}
}

func TestStratifiedSplitRoundingBias(t *testing.T) {
	// Remainders must go to the classes with the largest fractional share.
	// 10 points: 7 class 0, 3 class 1; request 3 ⇒ exact 2.1 / 0.9 ⇒ 2 / 1.
	labels := []int{0, 0, 0, 0, 0, 0, 0, 1, 1, 1}
	g := New(97)
	lab, _, err := StratifiedSplit(g, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, idx := range lab {
		count[labels[idx]]++
	}
	if count[0] != 2 || count[1] != 1 {
		t.Fatalf("allocation %v, want 2/1", count)
	}
}

func TestStratifiedSplitStatisticalBalance(t *testing.T) {
	// Across many draws the labeled fraction per class tracks the global
	// ratio.
	labels := make([]int, 100)
	for i := 40; i < 100; i++ {
		labels[i] = 1
	}
	g := New(99)
	var frac0 float64
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		lab, _, err := StratifiedSplit(g, labels, 10)
		if err != nil {
			t.Fatal(err)
		}
		c0 := 0
		for _, idx := range lab {
			if labels[idx] == 0 {
				c0++
			}
		}
		frac0 += float64(c0) / 10
	}
	frac0 /= trials
	if math.Abs(frac0-0.4) > 0.02 {
		t.Fatalf("class-0 labeled fraction %v, want 0.4", frac0)
	}
}

func TestStratifiedSplitValidation(t *testing.T) {
	g := New(101)
	if _, _, err := StratifiedSplit(g, nil, 1); !errors.Is(err, ErrParam) {
		t.Fatal("empty labels must error")
	}
	if _, _, err := StratifiedSplit(g, []int{0, 1}, 0); !errors.Is(err, ErrParam) {
		t.Fatal("nLabeled=0 must error")
	}
	if _, _, err := StratifiedSplit(g, []int{0, 1}, 2); !errors.Is(err, ErrParam) {
		t.Fatal("nLabeled=n must error")
	}
}
