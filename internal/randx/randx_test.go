package randx

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if New(42).Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestNormVecLen(t *testing.T) {
	g := New(1)
	v := g.NormVec(7)
	if len(v) != 7 {
		t.Fatalf("len = %d", len(v))
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := New(2)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Bernoulli(0.3)
	}
	if p := sum / n; math.Abs(p-0.3) > 0.02 {
		t.Fatalf("empirical p = %v, want ~0.3", p)
	}
	if g.Bernoulli(0) != 0 {
		t.Fatal("Bernoulli(0) must be 0")
	}
	if g.Bernoulli(1) != 1 {
		t.Fatal("Bernoulli(1) must be 1")
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(3)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	g := New(4)
	idx := []int{1, 2, 3, 4, 5}
	g.Shuffle(idx)
	sum := 0
	for _, v := range idx {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", idx)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(5)
	c1 := g.Split()
	c2 := g.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("children should produce different streams")
	}
}

func TestNewMVNValidation(t *testing.T) {
	sigma := mat.Eye(2)
	if _, err := NewMVN([]float64{0}, sigma); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	notPD, _ := mat.NewDenseData(2, 2, []float64{1, 2, 2, 1})
	if _, err := NewMVN([]float64{0, 0}, notPD); err == nil {
		t.Fatal("non-SPD sigma must error")
	}
}

func TestMVNMoments(t *testing.T) {
	mu := []float64{1, -2}
	sigma, _ := mat.NewDenseData(2, 2, []float64{2, 0.5, 0.5, 1})
	d, err := NewMVN(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 2 {
		t.Fatal("Dim wrong")
	}
	g := New(7)
	const n = 40000
	var m0, m1, c00, c01, c11 float64
	xs := d.SampleN(g, n)
	for _, x := range xs {
		m0 += x[0]
		m1 += x[1]
	}
	m0 /= n
	m1 /= n
	for _, x := range xs {
		c00 += (x[0] - m0) * (x[0] - m0)
		c01 += (x[0] - m0) * (x[1] - m1)
		c11 += (x[1] - m1) * (x[1] - m1)
	}
	c00 /= n
	c01 /= n
	c11 /= n
	if math.Abs(m0-1) > 0.05 || math.Abs(m1+2) > 0.05 {
		t.Fatalf("means (%v,%v)", m0, m1)
	}
	if math.Abs(c00-2) > 0.1 || math.Abs(c01-0.5) > 0.05 || math.Abs(c11-1) > 0.05 {
		t.Fatalf("covariances (%v,%v,%v)", c00, c01, c11)
	}
}

func TestNewPaperTruncatedMVN(t *testing.T) {
	if _, err := NewPaperTruncatedMVN(0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	d, err := NewPaperTruncatedMVN(5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 5 {
		t.Fatal("Dim wrong")
	}
}

func TestPaperTruncatedMVNRange(t *testing.T) {
	d, _ := NewPaperTruncatedMVN(5)
	g := New(11)
	for _, x := range d.SampleN(g, 2000) {
		if len(x) != 5 {
			t.Fatal("dimension wrong")
		}
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("censored coordinate out of range: %v", v)
			}
		}
	}
}

func TestPaperTruncatedMVNCensoringHappens(t *testing.T) {
	// With sd ≈ 0.32 around 0.5, a noticeable fraction of coordinates falls
	// outside [0,1] and must be set to exactly 0.
	d, _ := NewPaperTruncatedMVN(5)
	g := New(13)
	zeros := 0
	total := 0
	for _, x := range d.SampleN(g, 2000) {
		for _, v := range x {
			total++
			if v == 0 {
				zeros++
			}
		}
	}
	frac := float64(zeros) / float64(total)
	if frac < 0.02 || frac > 0.3 {
		t.Fatalf("censoring fraction %v implausible", frac)
	}
}

func TestPaperTruncatedMVNMeanNearHalf(t *testing.T) {
	d, _ := NewPaperTruncatedMVN(5)
	g := New(17)
	var sum float64
	const n = 5000
	for _, x := range d.SampleN(g, n) {
		sum += x[0]
	}
	mean := sum / n
	// Censoring pulls the mean slightly below 0.5.
	if mean < 0.35 || mean > 0.55 {
		t.Fatalf("coordinate mean %v implausible", mean)
	}
}

func TestLogistic(t *testing.T) {
	if Logistic(0) != 0.5 {
		t.Fatal("Logistic(0) must be 0.5")
	}
	if got := Logistic(1000); got != 1 {
		t.Fatalf("Logistic(1000) = %v, want 1", got)
	}
	if got := Logistic(-1000); got != 0 {
		t.Fatalf("Logistic(-1000) = %v, want 0", got)
	}
	// Symmetry: σ(−t) = 1 − σ(t).
	for _, v := range []float64{0.3, 1.7, 5} {
		if math.Abs(Logistic(-v)-(1-Logistic(v))) > 1e-15 {
			t.Fatalf("symmetry violated at %v", v)
		}
	}
}

func TestKFold(t *testing.T) {
	g := New(19)
	folds, err := KFold(g, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]bool)
	for _, f := range folds {
		if len(f) < 3 || len(f) > 4 {
			t.Fatalf("fold size %d out of balance", len(f))
		}
		for _, v := range f {
			if seen[v] {
				t.Fatalf("index %d appears twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 10 {
		t.Fatal("folds do not cover all indices")
	}
	if _, err := KFold(g, 3, 5); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, err := KFold(g, 3, 1); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam for k=1, got %v", err)
	}
}

func TestSplitLabeled(t *testing.T) {
	g := New(23)
	lab, unl, err := SplitLabeled(g, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab) != 3 || len(unl) != 7 {
		t.Fatalf("sizes %d/%d", len(lab), len(unl))
	}
	seen := make(map[int]bool)
	for _, v := range append(append([]int{}, lab...), unl...) {
		if seen[v] {
			t.Fatal("overlap between labeled and unlabeled")
		}
		seen[v] = true
	}
	if _, _, err := SplitLabeled(g, 5, 5); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
	if _, _, err := SplitLabeled(g, 5, 0); !errors.Is(err, ErrParam) {
		t.Fatalf("want ErrParam, got %v", err)
	}
}
