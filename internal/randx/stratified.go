package randx

import "fmt"

// StratifiedSplit draws a labeled subset of size nLabeled whose class
// proportions match the full label vector as closely as possible (exact up
// to rounding, with remainders assigned to the largest classes first). It
// returns the labeled and unlabeled index sets.
//
// Stratification matters for the COIL-style experiments at low labeled
// ratios: a uniform draw can miss a class entirely, leaving one-vs-rest
// columns with no positive examples.
func StratifiedSplit(g *RNG, labels []int, nLabeled int) (labeled, unlabeled []int, err error) {
	n := len(labels)
	if n == 0 {
		return nil, nil, fmt.Errorf("randx: empty labels: %w", ErrParam)
	}
	if nLabeled < 1 || nLabeled >= n {
		return nil, nil, fmt.Errorf("randx: StratifiedSplit(n=%d, labeled=%d): %w", n, nLabeled, ErrParam)
	}
	byClass := make(map[int][]int)
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic class order, then shuffle members per class.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}

	// Proportional allocation with largest-remainder rounding.
	type alloc struct {
		class     int
		base      int
		remainder float64
	}
	allocs := make([]alloc, 0, len(classes))
	total := 0
	for _, c := range classes {
		exact := float64(nLabeled) * float64(len(byClass[c])) / float64(n)
		base := int(exact)
		if base > len(byClass[c]) {
			base = len(byClass[c])
		}
		allocs = append(allocs, alloc{class: c, base: base, remainder: exact - float64(base)})
		total += base
	}
	for total < nLabeled {
		best := -1
		for i := range allocs {
			if allocs[i].base >= len(byClass[allocs[i].class]) {
				continue
			}
			if best == -1 || allocs[i].remainder > allocs[best].remainder {
				best = i
			}
		}
		if best == -1 {
			break // every class exhausted (cannot happen with nLabeled < n)
		}
		allocs[best].base++
		allocs[best].remainder = -1
		total++
	}

	taken := make(map[int]bool, nLabeled)
	for _, a := range allocs {
		members := byClass[a.class]
		perm := g.Perm(len(members))
		for _, pi := range perm[:a.base] {
			idx := members[pi]
			labeled = append(labeled, idx)
			taken[idx] = true
		}
	}
	for i := 0; i < n; i++ {
		if !taken[i] {
			unlabeled = append(unlabeled, i)
		}
	}
	return labeled, unlabeled, nil
}
