// Package experiments contains the harness that regenerates every figure of
// the paper's evaluation: the synthetic RMSE sweeps of Figures 1–4, the
// COIL-style AUC study of Figure 5, and the extension sweeps listed in
// DESIGN.md. Each experiment is deterministic given its seed and reports
// mean ± standard error across replications.
package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

var (
	// ErrParam is returned for invalid experiment configuration.
	ErrParam = errors.New("experiments: invalid parameter")
)

// Point is one aggregated measurement on a sweep axis.
type Point struct {
	// X is the swept value (n or m for the synthetic figures).
	X float64
	// Mean is the replication mean of the metric.
	Mean float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// Reps is the number of successful replications aggregated.
	Reps int
}

// Series is one curve (one λ) across the sweep axis.
type Series struct {
	// Label identifies the curve (e.g. "λ=0.01").
	Label string
	// Lambda is the tuning parameter for criterion curves; NaN for
	// non-criterion baselines such as Nadaraya–Watson.
	Lambda float64
	// Points are ordered along the sweep axis.
	Points []Point
}

// SweepResult is one full figure: several λ curves over a common axis.
type SweepResult struct {
	// Name identifies the experiment ("fig1", ...).
	Name string
	// XLabel names the sweep axis ("n" or "m").
	XLabel string
	// Metric names the aggregated metric ("RMSE" or "AUC").
	Metric string
	// Series holds one curve per λ, in configuration order.
	Series []Series
}

// SyntheticConfig drives Figures 1–4 and the extension sweeps.
type SyntheticConfig struct {
	// Model selects the response model (Model1 for Figs 1–2, Model2 for 3–4).
	Model synth.Model
	// SweepN, when non-empty, sweeps the labeled size with M fixed.
	SweepN []int
	// SweepM, when non-empty, sweeps the unlabeled size with N fixed.
	// Exactly one of SweepN/SweepM must be set.
	SweepM []int
	// N is the fixed labeled size for SweepM runs.
	N int
	// M is the fixed unlabeled size for SweepN runs.
	M int
	// Lambdas are the criterion curves (0 = hard criterion).
	Lambdas []float64
	// IncludeNW adds a Nadaraya–Watson baseline curve.
	IncludeNW bool
	// Reps is the number of replications per grid point (paper: 1000).
	Reps int
	// Seed makes the experiment reproducible.
	Seed int64
}

func (c *SyntheticConfig) validate() error {
	if (len(c.SweepN) == 0) == (len(c.SweepM) == 0) {
		return fmt.Errorf("experiments: exactly one of SweepN/SweepM: %w", ErrParam)
	}
	if len(c.SweepN) > 0 && c.M < 1 {
		return fmt.Errorf("experiments: SweepN needs fixed M>=1: %w", ErrParam)
	}
	if len(c.SweepM) > 0 && c.N < 2 {
		return fmt.Errorf("experiments: SweepM needs fixed N>=2: %w", ErrParam)
	}
	for _, n := range c.SweepN {
		if n < 2 {
			return fmt.Errorf("experiments: swept n=%d must be >=2: %w", n, ErrParam)
		}
	}
	for _, m := range c.SweepM {
		if m < 1 {
			return fmt.Errorf("experiments: swept m=%d must be >=1: %w", m, ErrParam)
		}
	}
	if len(c.Lambdas) == 0 {
		return fmt.Errorf("experiments: no lambdas: %w", ErrParam)
	}
	for _, l := range c.Lambdas {
		if l < 0 {
			return fmt.Errorf("experiments: λ=%v: %w", l, ErrParam)
		}
	}
	if c.Reps < 1 {
		return fmt.Errorf("experiments: reps=%d: %w", c.Reps, ErrParam)
	}
	return nil
}

// Fig1Config returns the paper's Figure 1 configuration (Model 1, m=30,
// n sweep) with the given replication count and seed.
func Fig1Config(reps int, seed int64) SyntheticConfig {
	return SyntheticConfig{
		Model:   synth.Model1,
		SweepN:  []int{10, 30, 50, 100, 200, 300, 500, 800, 1000, 1500},
		M:       30,
		Lambdas: []float64{0, 0.01, 0.1, 5},
		Reps:    reps,
		Seed:    seed,
	}
}

// Fig2Config returns the paper's Figure 2 configuration (Model 1, n=100,
// m sweep).
func Fig2Config(reps int, seed int64) SyntheticConfig {
	return SyntheticConfig{
		Model:   synth.Model1,
		SweepM:  []int{30, 60, 100, 300, 500, 1000},
		N:       100,
		Lambdas: []float64{0, 0.01, 0.1, 5},
		Reps:    reps,
		Seed:    seed,
	}
}

// Fig3Config returns the paper's Figure 3 configuration (Model 2, m=30,
// n sweep).
func Fig3Config(reps int, seed int64) SyntheticConfig {
	c := Fig1Config(reps, seed)
	c.Model = synth.Model2
	return c
}

// Fig4Config returns the paper's Figure 4 configuration (Model 2, n=100,
// m sweep).
func Fig4Config(reps int, seed int64) SyntheticConfig {
	c := Fig2Config(reps, seed)
	c.Model = synth.Model2
	return c
}

// RunSynthetic executes a synthetic sweep and aggregates RMSE per (x, λ).
func RunSynthetic(name string, cfg SyntheticConfig) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sweepingN := len(cfg.SweepN) > 0
	var axis []int
	xlabel := "m"
	if sweepingN {
		axis = cfg.SweepN
		xlabel = "n"
	} else {
		axis = cfg.SweepM
	}

	res := &SweepResult{Name: name, XLabel: xlabel, Metric: "RMSE"}
	for _, l := range cfg.Lambdas {
		res.Series = append(res.Series, Series{Label: lambdaLabel(l), Lambda: l})
	}
	nwIdx := -1
	if cfg.IncludeNW {
		nwIdx = len(res.Series)
		res.Series = append(res.Series, Series{Label: "NW", Lambda: math.NaN()})
	}

	root := randx.New(cfg.Seed)
	for _, x := range axis {
		n, m := cfg.N, cfg.M
		if sweepingN {
			n = x
		} else {
			m = x
		}
		accs := make([]stats.Welford, len(res.Series))
		rng := root.Split()
		for rep := 0; rep < cfg.Reps; rep++ {
			rmses, err := syntheticReplicate(rng.Split(), cfg, n, m, nwIdx)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %s=%d rep %d: %w", name, xlabel, x, rep, err)
			}
			for i, v := range rmses {
				accs[i].Add(v)
			}
		}
		for i := range res.Series {
			res.Series[i].Points = append(res.Series[i].Points, Point{
				X:      float64(x),
				Mean:   accs[i].Mean(),
				StdErr: accs[i].StdErr(),
				Reps:   accs[i].N(),
			})
		}
	}
	return res, nil
}

// syntheticReplicate runs one replication: draw data, build the RBF graph
// with the paper's bandwidth, solve each λ, and return one RMSE per series.
func syntheticReplicate(rng *randx.RNG, cfg SyntheticConfig, n, m, nwIdx int) ([]float64, error) {
	ds, err := synth.Generate(rng, cfg.Model, n, m)
	if err != nil {
		return nil, err
	}
	h, err := kernel.PaperBandwidth(n, synth.Dim)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(kernel.Gaussian, h)
	if err != nil {
		return nil, err
	}
	builder, err := graph.NewBuilder(k)
	if err != nil {
		return nil, err
	}
	g, err := builder.Build(ds.X)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
	if err != nil {
		return nil, err
	}
	truth := ds.QUnlabeled()

	total := len(cfg.Lambdas)
	if nwIdx >= 0 {
		total++
	}
	out := make([]float64, total)
	// One warm-started sweep shares the Laplacian and system assembly
	// across the λ curves instead of refactorizing per λ.
	path, err := core.SoftSweep(p, cfg.Lambdas)
	if err != nil {
		return nil, err
	}
	for i, pt := range path {
		r, err := stats.RMSE(pt.Solution.FUnlabeled, truth)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	if nwIdx >= 0 {
		nw, err := core.NadarayaWatson(p)
		if err != nil {
			return nil, err
		}
		r, err := stats.RMSE(nw, truth)
		if err != nil {
			return nil, err
		}
		out[nwIdx] = r
	}
	return out, nil
}

func lambdaLabel(l float64) string {
	return fmt.Sprintf("λ=%g", l)
}
