package experiments

import (
	"errors"
	"testing"

	"repro/internal/synth"
)

func TestBaselinesValidation(t *testing.T) {
	good := BaselinesDefaultConfig(1, 1)
	tests := []struct {
		name string
		mut  func(*BaselinesConfig)
	}{
		{"n too small", func(c *BaselinesConfig) { c.N = 1 }},
		{"m zero", func(c *BaselinesConfig) { c.M = 0 }},
		{"negative lambda", func(c *BaselinesConfig) { c.SoftLambda = -1 }},
		{"alpha one", func(c *BaselinesConfig) { c.SpreadAlpha = 1 }},
		{"alpha zero", func(c *BaselinesConfig) { c.SpreadAlpha = 0 }},
		{"knn zero", func(c *BaselinesConfig) { c.KNN = 0 }},
		{"knn beyond n", func(c *BaselinesConfig) { c.KNN = c.N + 1 }},
		{"reps zero", func(c *BaselinesConfig) { c.Reps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mut(&cfg)
			if _, err := RunBaselines(cfg); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
}

func TestRunBaselinesRowsAndOrdering(t *testing.T) {
	cfg := BaselinesConfig{
		Model:       synth.Model1,
		N:           120,
		M:           30,
		SoftLambda:  5, // strongly regularized, per Prop II.2 clearly worse
		SpreadAlpha: 0.9,
		KNN:         10,
		Reps:        8,
		Seed:        11,
	}
	rows, err := RunBaselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BaselineMethods) {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]BaselineRow, len(rows))
	for i, r := range rows {
		if r.Method != BaselineMethods[i] {
			t.Fatalf("row %d method %q, want %q", i, r.Method, BaselineMethods[i])
		}
		if r.Reps != cfg.Reps {
			t.Fatalf("row %q reps = %d", r.Method, r.Reps)
		}
		if r.Mean <= 0 || r.Mean > 1 {
			t.Fatalf("row %q RMSE %v implausible", r.Method, r.Mean)
		}
		byName[r.Method] = r
	}
	// Paper's claim: hard beats the strongly regularized soft criterion.
	if byName["hard (λ=0)"].Mean >= byName["soft"].Mean {
		t.Fatalf("hard %v not better than soft(λ=5) %v",
			byName["hard (λ=0)"].Mean, byName["soft"].Mean)
	}
	// Theory link: hard tracks NW closely.
	gap := byName["hard (λ=0)"].Mean - byName["Nadaraya–Watson"].Mean
	if gap < -0.05 || gap > 0.05 {
		t.Fatalf("hard %v and NW %v should be close",
			byName["hard (λ=0)"].Mean, byName["Nadaraya–Watson"].Mean)
	}
	// The supervised logistic model is well-specified for Model 1, so it
	// should be competitive (not wildly worse than hard).
	if byName["logistic (supervised)"].Mean > 2*byName["hard (λ=0)"].Mean {
		t.Fatalf("logistic %v implausibly bad", byName["logistic (supervised)"].Mean)
	}
}

func TestRunBaselinesDeterministic(t *testing.T) {
	cfg := BaselinesDefaultConfig(2, 5)
	cfg.N, cfg.M = 60, 15
	r1, err := RunBaselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBaselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Mean != r2[i].Mean {
			t.Fatal("same seed must reproduce")
		}
	}
}
