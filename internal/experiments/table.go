package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMarkdown renders a sweep result as a GitHub-flavoured markdown table
// with one row per x value and one column per series.
func (r *SweepResult) WriteMarkdown(w io.Writer) error {
	if len(r.Series) == 0 || len(r.Series[0].Points) == 0 {
		return fmt.Errorf("experiments: empty result %q: %w", r.Name, ErrParam)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — mean %s (avg over %d reps)\n\n", r.Name, r.Metric, r.Series[0].Points[0].Reps)
	sb.WriteString("| " + r.XLabel + " |")
	for _, s := range r.Series {
		sb.WriteString(" " + s.Label + " |")
	}
	sb.WriteString("\n|---|")
	for range r.Series {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for pi := range r.Series[0].Points {
		sb.WriteString("| " + strconv.FormatFloat(r.Series[0].Points[pi].X, 'g', -1, 64) + " |")
		for _, s := range r.Series {
			fmt.Fprintf(&sb, " %.4f |", s.Points[pi].Mean)
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders a sweep result as CSV: x, then mean and stderr per
// series.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	if len(r.Series) == 0 || len(r.Series[0].Points) == 0 {
		return fmt.Errorf("experiments: empty result %q: %w", r.Name, ErrParam)
	}
	var sb strings.Builder
	sb.WriteString(r.XLabel)
	for _, s := range r.Series {
		label := strings.ReplaceAll(s.Label, ",", ";")
		fmt.Fprintf(&sb, ",%s_mean,%s_stderr", label, label)
	}
	sb.WriteString("\n")
	for pi := range r.Series[0].Points {
		sb.WriteString(strconv.FormatFloat(r.Series[0].Points[pi].X, 'g', -1, 64))
		for _, s := range r.Series {
			fmt.Fprintf(&sb, ",%.6f,%.6f", s.Points[pi].Mean, s.Points[pi].StdErr)
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteMarkdown renders the Fig. 5 result as a markdown table with one row
// per λ and one column per labeled/unlabeled setting, matching the layout of
// the paper's figure.
func (r *Fig5Result) WriteMarkdown(w io.Writer) error {
	if len(r.AUC) == 0 || len(r.Lambdas) == 0 {
		return fmt.Errorf("experiments: empty fig5 result: %w", ErrParam)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "### fig5 — mean AUC (avg over %d split-experiments)\n\n", r.AUC[0][0].Reps)
	sb.WriteString("| λ |")
	for _, s := range r.Settings {
		sb.WriteString(" " + s.String() + " |")
	}
	sb.WriteString("\n|---|")
	for range r.Settings {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for li, l := range r.Lambdas {
		sb.WriteString("| " + strconv.FormatFloat(l, 'g', -1, 64) + " |")
		for s := range r.Settings {
			fmt.Fprintf(&sb, " %.4f |", r.AUC[s][li].Mean)
		}
		sb.WriteString("\n")
	}
	if r.MCC != nil {
		sb.WriteString("\nMCC at threshold 0.5:\n\n| λ |")
		for _, s := range r.Settings {
			sb.WriteString(" " + s.String() + " |")
		}
		sb.WriteString("\n|---|")
		for range r.Settings {
			sb.WriteString("---|")
		}
		sb.WriteString("\n")
		for li, l := range r.Lambdas {
			sb.WriteString("| " + strconv.FormatFloat(l, 'g', -1, 64) + " |")
			for s := range r.Settings {
				fmt.Fprintf(&sb, " %.4f |", r.MCC[s][li].Mean)
			}
			sb.WriteString("\n")
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the Fig. 5 result as CSV with one row per λ.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	if len(r.AUC) == 0 || len(r.Lambdas) == 0 {
		return fmt.Errorf("experiments: empty fig5 result: %w", ErrParam)
	}
	var sb strings.Builder
	sb.WriteString("lambda")
	for _, s := range r.Settings {
		name := strings.ReplaceAll(s.String(), "/", "_")
		fmt.Fprintf(&sb, ",auc_%s_mean,auc_%s_stderr", name, name)
	}
	sb.WriteString("\n")
	for li, l := range r.Lambdas {
		sb.WriteString(strconv.FormatFloat(l, 'g', -1, 64))
		for s := range r.Settings {
			fmt.Fprintf(&sb, ",%.6f,%.6f", r.AUC[s][li].Mean, r.AUC[s][li].StdErr)
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
