package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

// BaselinesConfig drives the extension experiment comparing the paper's
// criteria against external methods on the synthetic models: hard
// criterion, hard+CMN, soft criterion, Nadaraya–Watson, label spreading
// (Zhou et al.), k-NN, and supervised logistic regression.
type BaselinesConfig struct {
	// Model selects the synthetic response model.
	Model synth.Model
	// N and M are the labeled/unlabeled sizes.
	N, M int
	// SoftLambda is the soft-criterion tuning parameter.
	SoftLambda float64
	// SpreadAlpha is label spreading's α ∈ (0,1).
	SpreadAlpha float64
	// KNN is the neighbour count for the k-NN baseline.
	KNN int
	// Reps is the replication count.
	Reps int
	// Seed seeds the experiment.
	Seed int64
}

// BaselinesDefaultConfig returns a standard configuration.
func BaselinesDefaultConfig(reps int, seed int64) BaselinesConfig {
	return BaselinesConfig{
		Model:       synth.Model1,
		N:           200,
		M:           50,
		SoftLambda:  0.1,
		SpreadAlpha: 0.9,
		KNN:         10,
		Reps:        reps,
		Seed:        seed,
	}
}

// BaselineRow is one method's aggregated RMSE.
type BaselineRow struct {
	Method string
	Mean   float64
	StdErr float64
	Reps   int
}

func (c *BaselinesConfig) validate() error {
	if c.N < 2 || c.M < 1 {
		return fmt.Errorf("experiments: baselines n=%d m=%d: %w", c.N, c.M, ErrParam)
	}
	if c.SoftLambda < 0 || c.SpreadAlpha <= 0 || c.SpreadAlpha >= 1 {
		return fmt.Errorf("experiments: baselines λ=%v α=%v: %w", c.SoftLambda, c.SpreadAlpha, ErrParam)
	}
	if c.KNN < 1 || c.KNN > c.N {
		return fmt.Errorf("experiments: baselines knn=%d: %w", c.KNN, ErrParam)
	}
	if c.Reps < 1 {
		return fmt.Errorf("experiments: baselines reps=%d: %w", c.Reps, ErrParam)
	}
	return nil
}

// BaselineMethods lists the compared methods in output order.
var BaselineMethods = []string{
	"hard (λ=0)",
	"hard + CMN",
	"soft",
	"Nadaraya–Watson",
	"label spreading",
	"kNN",
	"logistic (supervised)",
}

// RunBaselines executes the comparison and returns one row per method,
// in BaselineMethods order, measuring RMSE against the true regression
// function on the unlabeled points.
func RunBaselines(cfg BaselinesConfig) ([]BaselineRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	accs := make([]stats.Welford, len(BaselineMethods))
	root := randx.New(cfg.Seed)
	for rep := 0; rep < cfg.Reps; rep++ {
		vals, err := baselinesReplicate(root.Split(), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: baselines rep %d: %w", rep, err)
		}
		for i, v := range vals {
			accs[i].Add(v)
		}
	}
	rows := make([]BaselineRow, len(BaselineMethods))
	for i, name := range BaselineMethods {
		rows[i] = BaselineRow{
			Method: name,
			Mean:   accs[i].Mean(),
			StdErr: accs[i].StdErr(),
			Reps:   accs[i].N(),
		}
	}
	return rows, nil
}

func baselinesReplicate(rng *randx.RNG, cfg BaselinesConfig) ([]float64, error) {
	ds, err := synth.Generate(rng, cfg.Model, cfg.N, cfg.M)
	if err != nil {
		return nil, err
	}
	h, err := kernel.PaperBandwidth(cfg.N, synth.Dim)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(kernel.Gaussian, h)
	if err != nil {
		return nil, err
	}
	builder, err := graph.NewBuilder(k)
	if err != nil {
		return nil, err
	}
	g, err := builder.Build(ds.X)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
	if err != nil {
		return nil, err
	}
	truth := ds.QUnlabeled()
	labeled := p.Labeled()
	y := ds.YLabeled()

	out := make([]float64, len(BaselineMethods))
	record := func(slot int, scores []float64) error {
		r, err := stats.RMSE(scores, truth)
		if err != nil {
			return err
		}
		out[slot] = r
		return nil
	}

	hard, err := core.SolveHard(p)
	if err != nil {
		return nil, err
	}
	if err := record(0, hard.FUnlabeled); err != nil {
		return nil, err
	}

	cmn, err := core.ClassMassNormalize(hard.FUnlabeled, p.LabeledPrior())
	if err != nil {
		return nil, err
	}
	if err := record(1, cmn); err != nil {
		return nil, err
	}

	soft, err := core.SolveSoft(p, cfg.SoftLambda)
	if err != nil {
		return nil, err
	}
	if err := record(2, soft.FUnlabeled); err != nil {
		return nil, err
	}

	nw, err := core.NadarayaWatson(p)
	if err != nil {
		return nil, err
	}
	if err := record(3, nw); err != nil {
		return nil, err
	}

	spread, _, err := baselines.LabelSpread(g, labeled, y, cfg.SpreadAlpha)
	if err != nil {
		return nil, err
	}
	if err := record(4, spread); err != nil {
		return nil, err
	}

	knn, _, err := baselines.KNNPredict(ds.X, labeled, y, cfg.KNN)
	if err != nil {
		return nil, err
	}
	if err := record(5, knn); err != nil {
		return nil, err
	}

	xLab := make([][]float64, cfg.N)
	copy(xLab, ds.X[:cfg.N])
	logit, err := baselines.FitLogistic(xLab, y, baselines.LogisticOptions{})
	if err != nil {
		return nil, err
	}
	pred, err := logit.Predict(ds.X[cfg.N:])
	if err != nil {
		return nil, err
	}
	if err := record(6, pred); err != nil {
		return nil, err
	}
	return out, nil
}
