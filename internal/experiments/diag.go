package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

// DiagConfig drives the consistency-mechanism experiment: it tracks the
// quantities from the proof of Theorem II.1 — the unlabeled-mass ratio that
// bounds g_{n+a} (≤ mM/(n h^d) there) and the empirical gap between the
// hard criterion and the Nadaraya–Watson estimator — as n grows with m
// fixed. Both must shrink toward zero, which is exactly how the paper
// proves consistency.
type DiagConfig struct {
	// SweepN is the labeled-size grid; M the fixed unlabeled size.
	SweepN []int
	M      int
	// Reps is the replication count.
	Reps int
	// Seed seeds the experiment.
	Seed int64
}

// DiagDefaultConfig returns the standard diagnostics sweep.
func DiagDefaultConfig(reps int, seed int64) DiagConfig {
	return DiagConfig{
		SweepN: []int{30, 100, 300, 900},
		M:      30,
		Reps:   reps,
		Seed:   seed,
	}
}

// DiagRow aggregates the proof quantities at one grid point.
type DiagRow struct {
	N int
	// MassRatio is the mean MaxUnlabeledMassRatio (the g-term bound).
	MassRatio float64
	// HardNWGap is the mean MaxHardNWGap.
	HardNWGap float64
	// ContractionRate is the mean spectral radius of D22⁻¹W22 (the
	// tiny-elements operator from the proof).
	ContractionRate float64
	Reps            int
}

func (c *DiagConfig) validate() error {
	if len(c.SweepN) == 0 || c.M < 1 {
		return fmt.Errorf("experiments: diag grid: %w", ErrParam)
	}
	for _, n := range c.SweepN {
		if n < 2 {
			return fmt.Errorf("experiments: diag n=%d: %w", n, ErrParam)
		}
	}
	if c.Reps < 1 {
		return fmt.Errorf("experiments: diag reps=%d: %w", c.Reps, ErrParam)
	}
	return nil
}

// RunDiag executes the diagnostics sweep.
func RunDiag(cfg DiagConfig) ([]DiagRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rows := make([]DiagRow, 0, len(cfg.SweepN))
	root := randx.New(cfg.Seed)
	for _, n := range cfg.SweepN {
		var massAcc, gapAcc, rhoAcc stats.Welford
		rng := root.Split()
		for rep := 0; rep < cfg.Reps; rep++ {
			repRng := rng.Split()
			ds, err := synth.Generate(repRng, synth.Model1, n, cfg.M)
			if err != nil {
				return nil, err
			}
			h, err := kernel.PaperBandwidth(n, synth.Dim)
			if err != nil {
				return nil, err
			}
			k, err := kernel.New(kernel.Gaussian, h)
			if err != nil {
				return nil, err
			}
			builder, err := graph.NewBuilder(k)
			if err != nil {
				return nil, err
			}
			g, err := builder.Build(ds.X)
			if err != nil {
				return nil, err
			}
			p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
			if err != nil {
				return nil, err
			}
			d, err := core.Diagnose(p)
			if err != nil {
				return nil, err
			}
			massAcc.Add(d.MaxUnlabeledMassRatio)
			gapAcc.Add(d.MaxHardNWGap)
			sys, err := core.BuildPropagationSystem(p)
			if err != nil {
				return nil, err
			}
			rho, err := core.ContractionRate(sys, 0)
			if err != nil {
				return nil, err
			}
			rhoAcc.Add(rho)
		}
		rows = append(rows, DiagRow{
			N:               n,
			MassRatio:       massAcc.Mean(),
			HardNWGap:       gapAcc.Mean(),
			ContractionRate: rhoAcc.Mean(),
			Reps:            massAcc.N(),
		})
	}
	return rows, nil
}
