package experiments

import (
	"errors"
	"testing"

	"repro/internal/kernel"
)

func TestKernelsValidation(t *testing.T) {
	good := KernelsDefaultConfig(1, 1)
	tests := []struct {
		name string
		mut  func(*KernelsConfig)
	}{
		{"no kernels", func(c *KernelsConfig) { c.Kernels = nil }},
		{"bad scale", func(c *KernelsConfig) { c.BandwidthScale = 0 }},
		{"empty grid", func(c *KernelsConfig) { c.SweepN = nil }},
		{"n too small", func(c *KernelsConfig) { c.SweepN = []int{1} }},
		{"m zero", func(c *KernelsConfig) { c.M = 0 }},
		{"reps zero", func(c *KernelsConfig) { c.Reps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mut(&cfg)
			if _, err := RunKernels(cfg); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
}

func TestRunKernelsShape(t *testing.T) {
	cfg := KernelsConfig{
		Kernels:        []kernel.Kind{kernel.Gaussian, kernel.Epanechnikov},
		BandwidthScale: 3,
		SweepN:         []int{40, 160},
		M:              15,
		Reps:           6,
		Seed:           41,
	}
	res, err := RunKernels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points = %d", s.Label, len(s.Points))
		}
		// Consistency under every kernel: RMSE falls with n.
		if s.Points[1].Mean >= s.Points[0].Mean {
			t.Fatalf("%s RMSE must fall with n: %v", s.Label, s.Points)
		}
		for _, p := range s.Points {
			if p.Mean <= 0 || p.Mean > 0.8 {
				t.Fatalf("%s RMSE %v implausible", s.Label, p.Mean)
			}
		}
	}
}

func TestWorstCaseRMSE(t *testing.T) {
	if got := worstCaseRMSE([]float64{0.5, 0.5}); got != 0 {
		t.Fatalf("all-0.5 truth worst case = %v", got)
	}
	if got := worstCaseRMSE([]float64{1}); got != 0.5 {
		t.Fatalf("single-1 truth worst case = %v", got)
	}
}

func TestRunCOIL6(t *testing.T) {
	cfg := COIL6DefaultConfig(20, 1, 9)
	cfg.Lambdas = []float64{0, 1}
	pts, err := RunCOIL6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// Six balanced classes: chance accuracy is 1/6 ≈ 0.167.
		if p.Mean < 0.17 || p.Mean > 1 {
			t.Fatalf("accuracy %v implausible", p.Mean)
		}
		if p.Reps != 5 { // one rep × five Setting20 splits
			t.Fatalf("reps = %d", p.Reps)
		}
	}
	// Hard criterion at least matches strong regularization.
	if pts[0].Mean < pts[1].Mean-0.02 {
		t.Fatalf("hard accuracy %v clearly below λ=1 accuracy %v", pts[0].Mean, pts[1].Mean)
	}
}

func TestRunCOIL6Validation(t *testing.T) {
	if _, err := RunCOIL6(COIL6Config{PerClass: 1, Lambdas: []float64{0}, Reps: 1}); !errors.Is(err, ErrParam) {
		t.Fatal("perClass too small must error")
	}
	if _, err := RunCOIL6(COIL6Config{PerClass: 5, Lambdas: nil, Reps: 1}); !errors.Is(err, ErrParam) {
		t.Fatal("no lambdas must error")
	}
	if _, err := RunCOIL6(COIL6Config{PerClass: 5, Lambdas: []float64{-1}, Reps: 1}); !errors.Is(err, ErrParam) {
		t.Fatal("negative lambda must error")
	}
	if _, err := RunCOIL6(COIL6Config{PerClass: 5, Lambdas: []float64{0}, Reps: 0}); !errors.Is(err, ErrParam) {
		t.Fatal("reps zero must error")
	}
}
