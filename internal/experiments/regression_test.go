package experiments

import (
	"errors"
	"math"
	"testing"
)

func TestRegressionValidation(t *testing.T) {
	good := RegressionDefaultConfig(1, 1)
	tests := []struct {
		name string
		mut  func(*RegressionConfig)
	}{
		{"negative noise", func(c *RegressionConfig) { c.Noise = -1 }},
		{"empty grid", func(c *RegressionConfig) { c.SweepN = nil }},
		{"n too small", func(c *RegressionConfig) { c.SweepN = []int{1} }},
		{"m zero", func(c *RegressionConfig) { c.M = 0 }},
		{"no lambdas", func(c *RegressionConfig) { c.Lambdas = nil }},
		{"negative lambda", func(c *RegressionConfig) { c.Lambdas = []float64{-0.1} }},
		{"reps zero", func(c *RegressionConfig) { c.Reps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mut(&cfg)
			if _, err := RunRegression(cfg); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
}

func TestRunRegressionShape(t *testing.T) {
	cfg := RegressionConfig{
		Noise:   0.2,
		SweepN:  []int{40, 160, 640},
		M:       20,
		Lambdas: []float64{0, 5},
		Reps:    8,
		Seed:    21,
	}
	res, err := RunRegression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 { // 2 λ + NW
		t.Fatalf("series = %d", len(res.Series))
	}
	hard := res.Series[0]
	// Consistency in the regression case too: hard RMSE falls with n.
	if hard.Points[2].Mean >= hard.Points[0].Mean {
		t.Fatalf("hard regression RMSE must fall with n: %v", hard.Points)
	}
	// Hard beats the strongly regularized soft criterion.
	soft := res.Series[1]
	for i := range hard.Points {
		if hard.Points[i].Mean >= soft.Points[i].Mean {
			t.Fatalf("hard not better than soft at n=%v", hard.Points[i].X)
		}
	}
	// NW and hard stay close (the Theorem II.1 mechanism).
	nw := res.Series[2]
	if !math.IsNaN(nw.Lambda) {
		t.Fatal("NW series must carry NaN lambda")
	}
	for i := range hard.Points {
		if math.Abs(hard.Points[i].Mean-nw.Points[i].Mean) > 0.1 {
			t.Fatalf("hard %v and NW %v diverged at n=%v",
				hard.Points[i].Mean, nw.Points[i].Mean, hard.Points[i].X)
		}
	}
}

func TestRunRegressionNoiseless(t *testing.T) {
	cfg := RegressionConfig{
		Noise:   0,
		SweepN:  []int{60},
		M:       15,
		Lambdas: []float64{0},
		Reps:    4,
		Seed:    23,
	}
	res, err := RunRegression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series[0].Points[0].Mean <= 0 {
		t.Fatal("noiseless RMSE should still be positive (smoothing bias)")
	}
}
