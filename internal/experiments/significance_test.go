package experiments

import (
	"errors"
	"testing"

	"repro/internal/synth"
)

func TestSignificanceValidation(t *testing.T) {
	good := SignificanceDefaultConfig(10, 1)
	tests := []struct {
		name string
		mut  func(*SignificanceConfig)
	}{
		{"n too small", func(c *SignificanceConfig) { c.N = 1 }},
		{"m zero", func(c *SignificanceConfig) { c.M = 0 }},
		{"no lambdas", func(c *SignificanceConfig) { c.Lambdas = nil }},
		{"lambda zero", func(c *SignificanceConfig) { c.Lambdas = []float64{0} }},
		{"one rep", func(c *SignificanceConfig) { c.Reps = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mut(&cfg)
			if _, err := RunSignificance(cfg); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
}

// TestRunSignificanceHardWins is the statistical form of the paper's
// headline: the paired hard−soft RMSE difference is negative and, for the
// larger λ values, decisively significant.
func TestRunSignificanceHardWins(t *testing.T) {
	cfg := SignificanceConfig{
		Model:   synth.Model1,
		N:       150,
		M:       40,
		Lambdas: []float64{0.1, 5},
		Reps:    15,
		Seed:    71,
	}
	rows, err := RunSignificance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.HardMean >= row.SoftMean {
			t.Fatalf("λ=%v: hard %v not below soft %v", row.Lambda, row.HardMean, row.SoftMean)
		}
		if row.Test.MeanDiff >= 0 {
			t.Fatalf("λ=%v: paired diff %v not negative", row.Lambda, row.Test.MeanDiff)
		}
	}
	// λ=5 is far from consistent: the paired test must be decisive.
	if rows[1].Test.P > 1e-4 {
		t.Fatalf("λ=5 comparison not significant: %+v", rows[1].Test)
	}
}

func TestRunSignificanceDeterministic(t *testing.T) {
	cfg := SignificanceDefaultConfig(4, 9)
	cfg.N, cfg.M = 60, 15
	r1, err := RunSignificance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSignificance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Test.T != r2[i].Test.T {
			t.Fatal("same seed must reproduce")
		}
	}
}
