package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteBaselineCSV renders the baselines comparison as CSV.
func WriteBaselineCSV(rows []BaselineRow, w io.Writer) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty baseline rows: %w", ErrParam)
	}
	var sb strings.Builder
	sb.WriteString("method,rmse_mean,rmse_stderr,reps\n")
	for _, r := range rows {
		method := strings.ReplaceAll(r.Method, ",", ";")
		fmt.Fprintf(&sb, "%s,%.6f,%.6f,%d\n", method, r.Mean, r.StdErr, r.Reps)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteDiagCSV renders the Theorem II.1 diagnostics as CSV.
func WriteDiagCSV(rows []DiagRow, w io.Writer) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty diag rows: %w", ErrParam)
	}
	var sb strings.Builder
	sb.WriteString("n,mass_ratio,hard_nw_gap,contraction_rate,reps\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%d,%.6f,%.6f,%.6f,%d\n", r.N, r.MassRatio, r.HardNWGap, r.ContractionRate, r.Reps)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteSignificanceCSV renders the paired-significance rows as CSV.
func WriteSignificanceCSV(rows []SignificanceRow, w io.Writer) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty significance rows: %w", ErrParam)
	}
	var sb strings.Builder
	sb.WriteString("lambda,rmse_hard,rmse_soft,t,df,p,mean_diff\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%g,%.6f,%.6f,%.4f,%d,%.6g,%.6g\n",
			r.Lambda, r.HardMean, r.SoftMean, r.Test.T, r.Test.DF, r.Test.P, r.Test.MeanDiff)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
