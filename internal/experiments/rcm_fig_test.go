package experiments

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/sparse"
	"repro/internal/synth"
)

// TestRCMBandwidthOnFigureGraphs builds one representative similarity graph
// per figure configuration (Figures 1–4: both response models, both sweep
// shapes) and checks that RCM never increases the Laplacian bandwidth —
// the property the reordered IC(0) solve path relies on. Each graph is
// tested dense (the figures' RBF graph) and kNN-sparsified (where
// reordering has real structure to exploit).
func TestRCMBandwidthOnFigureGraphs(t *testing.T) {
	cases := []struct {
		name  string
		model synth.Model
		n, m  int
	}{
		{"fig1", synth.Model1, 200, 30},
		{"fig2", synth.Model1, 100, 300},
		{"fig3", synth.Model2, 200, 30},
		{"fig4", synth.Model2, 100, 300},
	}
	for _, c := range cases {
		rng := randx.New(77)
		ds, err := synth.Generate(rng, c.model, c.n, c.m)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		h, err := kernel.PaperBandwidth(c.n, synth.Dim)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		k := kernel.MustNew(kernel.Gaussian, h)
		for _, knn := range []int{0, 8} {
			opts := []graph.Option{}
			if knn > 0 {
				opts = append(opts, graph.WithKNN(knn))
			}
			builder, err := graph.NewBuilder(k, opts...)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			g, err := builder.Build(ds.X)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			lap, err := g.Laplacian(graph.Unnormalized)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			perm, err := sparse.RCM(lap)
			if err != nil {
				t.Fatalf("%s knn=%d: RCM: %v", c.name, knn, err)
			}
			pl, err := lap.Permute(perm)
			if err != nil {
				t.Fatalf("%s knn=%d: permute: %v", c.name, knn, err)
			}
			if got, orig := pl.Bandwidth(), lap.Bandwidth(); got > orig {
				t.Fatalf("%s knn=%d: RCM increased bandwidth %d -> %d", c.name, knn, orig, got)
			}
		}
	}
}
