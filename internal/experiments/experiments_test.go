package experiments

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/coil"
	"repro/internal/synth"
)

func smallSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Model:   synth.Model1,
		SweepN:  []int{20, 60, 180},
		M:       15,
		Lambdas: []float64{0, 0.1, 5},
		Reps:    12,
		Seed:    42,
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*SyntheticConfig)
	}{
		{"both sweeps", func(c *SyntheticConfig) { c.SweepM = []int{10} }},
		{"no sweep", func(c *SyntheticConfig) { c.SweepN = nil }},
		{"bad fixed m", func(c *SyntheticConfig) { c.M = 0 }},
		{"swept n too small", func(c *SyntheticConfig) { c.SweepN = []int{1} }},
		{"no lambdas", func(c *SyntheticConfig) { c.Lambdas = nil }},
		{"negative lambda", func(c *SyntheticConfig) { c.Lambdas = []float64{-1} }},
		{"zero reps", func(c *SyntheticConfig) { c.Reps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallSynthetic()
			tt.mut(&cfg)
			if _, err := RunSynthetic("x", cfg); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
	// SweepM-specific validation.
	cfg := SyntheticConfig{Model: synth.Model1, SweepM: []int{10}, N: 1, Lambdas: []float64{0}, Reps: 1}
	if _, err := RunSynthetic("x", cfg); !errors.Is(err, ErrParam) {
		t.Fatalf("SweepM with N<2: want ErrParam, got %v", err)
	}
	cfg = SyntheticConfig{Model: synth.Model1, SweepM: []int{0}, N: 10, Lambdas: []float64{0}, Reps: 1}
	if _, err := RunSynthetic("x", cfg); !errors.Is(err, ErrParam) {
		t.Fatalf("swept m=0: want ErrParam, got %v", err)
	}
}

func TestRunSyntheticShapes(t *testing.T) {
	cfg := smallSynthetic()
	cfg.IncludeNW = true
	res, err := RunSynthetic("probe", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "probe" || res.XLabel != "n" || res.Metric != "RMSE" {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if len(res.Series) != 4 { // 3 λ + NW
		t.Fatalf("series = %d", len(res.Series))
	}
	if res.Series[3].Label != "NW" || !math.IsNaN(res.Series[3].Lambda) {
		t.Fatal("NW series metadata wrong")
	}
	for _, s := range res.Series {
		if len(s.Points) != 3 {
			t.Fatalf("points = %d", len(s.Points))
		}
		for _, p := range s.Points {
			if p.Reps != cfg.Reps {
				t.Fatalf("reps = %d", p.Reps)
			}
			if p.Mean <= 0 || p.Mean > 1 {
				t.Fatalf("RMSE %v implausible", p.Mean)
			}
			if p.StdErr < 0 {
				t.Fatal("negative stderr")
			}
		}
	}
}

// TestFig1ShapeHolds checks the paper's two Figure-1 claims at reduced
// scale: RMSE decreases with n, and the hard criterion (λ=0) beats every
// soft curve at every grid point.
func TestFig1ShapeHolds(t *testing.T) {
	res, err := RunSynthetic("fig1", smallSynthetic())
	if err != nil {
		t.Fatal(err)
	}
	hard := res.Series[0]
	if hard.Lambda != 0 {
		t.Fatal("first series must be λ=0")
	}
	// RMSE decreasing in n for the hard criterion (allow tiny noise).
	last := hard.Points[len(hard.Points)-1].Mean
	first := hard.Points[0].Mean
	if last >= first {
		t.Fatalf("hard RMSE must fall with n: %v → %v", first, last)
	}
	// Hard beats soft λ=5 everywhere and λ=0.1 on the larger grid points.
	soft5 := res.Series[2]
	for i := range hard.Points {
		if hard.Points[i].Mean >= soft5.Points[i].Mean {
			t.Fatalf("hard not better than λ=5 at n=%v: %v vs %v",
				hard.Points[i].X, hard.Points[i].Mean, soft5.Points[i].Mean)
		}
	}
}

// TestFig2ShapeHolds checks the Figure-2 claim: with n fixed, RMSE grows as
// m grows, and hard still beats soft.
func TestFig2ShapeHolds(t *testing.T) {
	cfg := SyntheticConfig{
		Model:   synth.Model1,
		SweepM:  []int{15, 60, 240},
		N:       60,
		Lambdas: []float64{0, 5},
		Reps:    12,
		Seed:    43,
	}
	res, err := RunSynthetic("fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	hard := res.Series[0]
	if hard.Points[len(hard.Points)-1].Mean <= hard.Points[0].Mean {
		t.Fatalf("hard RMSE must rise with m: %v", hard.Points)
	}
	soft := res.Series[1]
	for i := range hard.Points {
		if hard.Points[i].Mean >= soft.Points[i].Mean {
			t.Fatalf("hard not better at m=%v", hard.Points[i].X)
		}
	}
}

func TestFigConfigsMatchPaperGrids(t *testing.T) {
	f1 := Fig1Config(1000, 1)
	if f1.Model != synth.Model1 || f1.M != 30 {
		t.Fatalf("fig1 config wrong: %+v", f1)
	}
	wantN := []int{10, 30, 50, 100, 200, 300, 500, 800, 1000, 1500}
	if len(f1.SweepN) != len(wantN) {
		t.Fatal("fig1 n grid wrong")
	}
	for i, n := range wantN {
		if f1.SweepN[i] != n {
			t.Fatalf("fig1 grid[%d] = %d, want %d", i, f1.SweepN[i], n)
		}
	}
	wantL := []float64{0, 0.01, 0.1, 5}
	for i, l := range wantL {
		if f1.Lambdas[i] != l {
			t.Fatal("fig1 lambdas wrong")
		}
	}
	f2 := Fig2Config(1000, 1)
	if f2.N != 100 || len(f2.SweepM) != 6 || f2.SweepM[5] != 1000 {
		t.Fatalf("fig2 config wrong: %+v", f2)
	}
	if Fig3Config(1, 1).Model != synth.Model2 || Fig4Config(1, 1).Model != synth.Model2 {
		t.Fatal("fig3/4 must use Model2")
	}
}

func TestRunSyntheticDeterministic(t *testing.T) {
	cfg := smallSynthetic()
	cfg.SweepN = []int{20, 40}
	cfg.Reps = 5
	r1, err := RunSynthetic("a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSynthetic("a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range r1.Series {
		for pi := range r1.Series[si].Points {
			if r1.Series[si].Points[pi].Mean != r2.Series[si].Points[pi].Mean {
				t.Fatal("same seed must reproduce the sweep")
			}
		}
	}
}

func TestFig5Validation(t *testing.T) {
	bad := []Fig5Cfg{
		{PerClass: 1, Lambdas: []float64{0}, Settings: []coil.Setting{coil.Setting80}, Reps: 1},
		{PerClass: 5, Lambdas: nil, Settings: []coil.Setting{coil.Setting80}, Reps: 1},
		{PerClass: 5, Lambdas: []float64{0}, Settings: nil, Reps: 1},
		{PerClass: 5, Lambdas: []float64{-1}, Settings: []coil.Setting{coil.Setting80}, Reps: 1},
		{PerClass: 5, Lambdas: []float64{0}, Settings: []coil.Setting{coil.Setting80}, Reps: 0},
	}
	for i, cfg := range bad {
		if _, err := RunFig5(cfg); !errors.Is(err, ErrParam) {
			t.Fatalf("case %d: want ErrParam, got %v", i, err)
		}
	}
}

// TestFig5ShapeHolds checks the paper's Figure-5 claims at reduced scale:
// the hard criterion gives the best AUC in each setting, and AUC improves
// with the labeled share (80/20 above 10/90).
func TestFig5ShapeHolds(t *testing.T) {
	cfg := Fig5Cfg{
		PerClass: 50, // 300 images
		Lambdas:  []float64{0, 0.1, 5},
		Settings: []coil.Setting{coil.Setting80, coil.Setting10},
		Reps:     2,
		Seed:     7,
		MCC:      true,
	}
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, setting := range res.Settings {
		if res.AUC[s][0].Mean <= res.AUC[s][len(cfg.Lambdas)-1].Mean {
			t.Fatalf("%v: hard AUC %v not above λ=5 AUC %v",
				setting, res.AUC[s][0].Mean, res.AUC[s][2].Mean)
		}
		for li := range cfg.Lambdas {
			if res.AUC[s][li].Mean < 0.4 || res.AUC[s][li].Mean > 1 {
				t.Fatalf("AUC %v implausible", res.AUC[s][li].Mean)
			}
		}
	}
	// More labels help at λ=0.
	if res.AUC[0][0].Mean <= res.AUC[1][0].Mean {
		t.Fatalf("80/20 AUC %v not above 10/90 AUC %v", res.AUC[0][0].Mean, res.AUC[1][0].Mean)
	}
	if res.MCC == nil {
		t.Fatal("MCC requested but missing")
	}
	// Hard-criterion MCC should also top the λ path in the data-rich setting.
	if res.MCC[0][0].Mean <= res.MCC[0][2].Mean {
		t.Fatalf("80/20 MCC ordering violated: %v vs %v", res.MCC[0][0].Mean, res.MCC[0][2].Mean)
	}
}

func TestSweepWriteMarkdownAndCSV(t *testing.T) {
	cfg := smallSynthetic()
	cfg.SweepN = []int{20, 40}
	cfg.Reps = 3
	res, err := RunSynthetic("fig1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var md strings.Builder
	if err := res.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| n |") || !strings.Contains(md.String(), "λ=0") {
		t.Fatalf("markdown missing pieces:\n%s", md.String())
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 { // header + 2 grid points
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "n,") {
		t.Fatalf("csv header: %s", lines[0])
	}
	empty := &SweepResult{Name: "e"}
	if err := empty.WriteMarkdown(&md); !errors.Is(err, ErrParam) {
		t.Fatal("empty markdown must error")
	}
	if err := empty.WriteCSV(&csv); !errors.Is(err, ErrParam) {
		t.Fatal("empty csv must error")
	}
}

func TestFig5WriteMarkdownAndCSV(t *testing.T) {
	cfg := Fig5Cfg{
		PerClass: 10,
		Lambdas:  []float64{0, 1},
		Settings: []coil.Setting{coil.Setting80},
		Reps:     1,
		Seed:     3,
		MCC:      true,
	}
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var md strings.Builder
	if err := res.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "80/20") || !strings.Contains(md.String(), "MCC") {
		t.Fatalf("fig5 markdown missing pieces:\n%s", md.String())
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "lambda,auc_80_20_mean") {
		t.Fatalf("fig5 csv header: %s", csv.String())
	}
	empty := &Fig5Result{}
	if err := empty.WriteMarkdown(&md); !errors.Is(err, ErrParam) {
		t.Fatal("empty fig5 markdown must error")
	}
	if err := empty.WriteCSV(&csv); !errors.Is(err, ErrParam) {
		t.Fatal("empty fig5 csv must error")
	}
}

func TestFig5DefaultCfgMatchesPaper(t *testing.T) {
	cfg := Fig5DefaultCfg(250, 100, 1)
	wantL := []float64{0, 0.01, 0.05, 0.1, 0.5, 1, 5}
	if len(cfg.Lambdas) != len(wantL) {
		t.Fatal("λ grid size wrong")
	}
	for i, l := range wantL {
		if cfg.Lambdas[i] != l {
			t.Fatalf("λ[%d] = %v, want %v", i, cfg.Lambdas[i], l)
		}
	}
	if len(cfg.Settings) != 3 {
		t.Fatal("settings wrong")
	}
	if cfg.PerClass != 250 || cfg.Reps != 100 {
		t.Fatal("scale wrong")
	}
}
