package experiments

import (
	"errors"
	"testing"
)

func TestDiagValidation(t *testing.T) {
	good := DiagDefaultConfig(1, 1)
	tests := []struct {
		name string
		mut  func(*DiagConfig)
	}{
		{"empty grid", func(c *DiagConfig) { c.SweepN = nil }},
		{"n too small", func(c *DiagConfig) { c.SweepN = []int{1} }},
		{"m zero", func(c *DiagConfig) { c.M = 0 }},
		{"reps zero", func(c *DiagConfig) { c.Reps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mut(&cfg)
			if _, err := RunDiag(cfg); !errors.Is(err, ErrParam) {
				t.Fatalf("want ErrParam, got %v", err)
			}
		})
	}
}

// TestRunDiagProofQuantitiesShrink is the computational heart of the
// reproduction of Theorem II.1: all three proof quantities must decrease
// as n grows with m fixed.
func TestRunDiagProofQuantitiesShrink(t *testing.T) {
	cfg := DiagConfig{
		SweepN: []int{30, 120, 480},
		M:      20,
		Reps:   6,
		Seed:   51,
	}
	rows, err := RunDiag(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.MassRatio >= first.MassRatio {
		t.Fatalf("mass ratio must shrink: %v → %v", first.MassRatio, last.MassRatio)
	}
	if last.HardNWGap >= first.HardNWGap {
		t.Fatalf("hard–NW gap must shrink: %v → %v", first.HardNWGap, last.HardNWGap)
	}
	if last.ContractionRate >= first.ContractionRate {
		t.Fatalf("contraction rate must shrink: %v → %v", first.ContractionRate, last.ContractionRate)
	}
	for _, r := range rows {
		if r.MassRatio <= 0 || r.MassRatio >= 1 {
			t.Fatalf("mass ratio %v outside (0,1)", r.MassRatio)
		}
		if r.ContractionRate <= 0 || r.ContractionRate >= 1 {
			t.Fatalf("contraction rate %v outside (0,1)", r.ContractionRate)
		}
		if r.Reps != cfg.Reps {
			t.Fatalf("reps = %d", r.Reps)
		}
	}
}
