package experiments

import (
	"fmt"

	"repro/internal/coil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
)

// Fig5Cfg drives the COIL-style AUC study of the paper's Figure 5.
type Fig5Cfg struct {
	// PerClass is the number of images kept per class (paper: 250 ⇒ 1500
	// total). Smaller values run the identical pipeline at lower cost.
	PerClass int
	// Lambdas are the criterion curves (paper: 0, .01, .05, .1, .5, 1, 5).
	Lambdas []float64
	// Settings are the labeled/unlabeled ratios (paper: all three).
	Settings []coil.Setting
	// Reps is the number of split repetitions (paper: 100).
	Reps int
	// Seed makes the experiment reproducible.
	Seed int64
	// MCC additionally records the Matthews correlation coefficient at the
	// 0.5 threshold (the paper's future-work metric).
	MCC bool
}

// Fig5DefaultCfg returns the paper's Figure 5 configuration at the given
// scale (perClass images per class) and repetition count.
func Fig5DefaultCfg(perClass, reps int, seed int64) Fig5Cfg {
	return Fig5Cfg{
		PerClass: perClass,
		Lambdas:  []float64{0, 0.01, 0.05, 0.1, 0.5, 1, 5},
		Settings: []coil.Setting{coil.Setting80, coil.Setting20, coil.Setting10},
		Reps:     reps,
		Seed:     seed,
	}
}

// Fig5Result holds one curve per setting: mean AUC (and optionally MCC)
// across splits and repetitions, per λ.
type Fig5Result struct {
	// Lambdas is the common λ axis.
	Lambdas []float64
	// Settings are the evaluated ratios, in configuration order.
	Settings []coil.Setting
	// AUC[s][l] aggregates setting s at λ index l.
	AUC [][]Point
	// MCC mirrors AUC when requested, else nil.
	MCC [][]Point
}

func (c *Fig5Cfg) validate() error {
	if c.PerClass < 2 {
		return fmt.Errorf("experiments: fig5 perClass=%d: %w", c.PerClass, ErrParam)
	}
	if len(c.Lambdas) == 0 || len(c.Settings) == 0 {
		return fmt.Errorf("experiments: fig5 empty lambdas or settings: %w", ErrParam)
	}
	for _, l := range c.Lambdas {
		if l < 0 {
			return fmt.Errorf("experiments: fig5 λ=%v: %w", l, ErrParam)
		}
	}
	if c.Reps < 1 {
		return fmt.Errorf("experiments: fig5 reps=%d: %w", c.Reps, ErrParam)
	}
	return nil
}

// RunFig5 executes the study: render the dataset, build the RBF graph with
// the median-heuristic σ (σ² = median squared pairwise distance, as in the
// paper), then for every repetition, setting, and split solve each λ and
// accumulate AUC on the unlabeled data.
func RunFig5(cfg Fig5Cfg) (*Fig5Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds, err := coil.GenerateSized(cfg.Seed, cfg.PerClass)
	if err != nil {
		return nil, err
	}
	x := ds.X()
	y := ds.YBinary()
	nTotal := len(x)

	sigma, err := kernel.MedianHeuristic(x, 200000)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(kernel.Gaussian, sigma)
	if err != nil {
		return nil, err
	}
	builder, err := graph.NewBuilder(k)
	if err != nil {
		return nil, err
	}
	d2, err := kernel.PairwiseDist2(x)
	if err != nil {
		return nil, err
	}
	g, err := builder.BuildFromDist2(nTotal, d2)
	if err != nil {
		return nil, err
	}

	aucAcc := make([][]stats.Welford, len(cfg.Settings))
	mccAcc := make([][]stats.Welford, len(cfg.Settings))
	for s := range cfg.Settings {
		aucAcc[s] = make([]stats.Welford, len(cfg.Lambdas))
		mccAcc[s] = make([]stats.Welford, len(cfg.Lambdas))
	}

	root := randx.New(cfg.Seed + 1)
	for rep := 0; rep < cfg.Reps; rep++ {
		for s, setting := range cfg.Settings {
			splits, err := coil.Splits(root.Split(), nTotal, setting)
			if err != nil {
				return nil, err
			}
			for _, sp := range splits {
				yl := make([]float64, len(sp.Labeled))
				for i, idx := range sp.Labeled {
					yl[i] = y[idx]
				}
				p, err := core.NewProblem(g, sp.Labeled, yl)
				if err != nil {
					return nil, err
				}
				truth := make([]float64, len(sp.Unlabeled))
				unl := p.Unlabeled() // ascending order used by FUnlabeled
				for i, idx := range unl {
					truth[i] = y[idx]
				}
				for li, l := range cfg.Lambdas {
					sol, err := core.SolveSoft(p, l)
					if err != nil {
						return nil, fmt.Errorf("experiments: fig5 %v λ=%v: %w", setting, l, err)
					}
					auc, err := stats.AUC(sol.FUnlabeled, truth)
					if err != nil {
						return nil, err
					}
					aucAcc[s][li].Add(auc)
					if cfg.MCC {
						conf, err := stats.NewConfusion(sol.FUnlabeled, truth, 0.5)
						if err != nil {
							return nil, err
						}
						mccAcc[s][li].Add(conf.MCC())
					}
				}
			}
		}
	}

	res := &Fig5Result{
		Lambdas:  append([]float64(nil), cfg.Lambdas...),
		Settings: append([]coil.Setting(nil), cfg.Settings...),
		AUC:      make([][]Point, len(cfg.Settings)),
	}
	if cfg.MCC {
		res.MCC = make([][]Point, len(cfg.Settings))
	}
	for s := range cfg.Settings {
		res.AUC[s] = make([]Point, len(cfg.Lambdas))
		for li, l := range cfg.Lambdas {
			res.AUC[s][li] = Point{
				X:      l,
				Mean:   aucAcc[s][li].Mean(),
				StdErr: aucAcc[s][li].StdErr(),
				Reps:   aucAcc[s][li].N(),
			}
		}
		if cfg.MCC {
			res.MCC[s] = make([]Point, len(cfg.Lambdas))
			for li, l := range cfg.Lambdas {
				res.MCC[s][li] = Point{
					X:      l,
					Mean:   mccAcc[s][li].Mean(),
					StdErr: mccAcc[s][li].StdErr(),
					Reps:   mccAcc[s][li].N(),
				}
			}
		}
	}
	return res, nil
}
