package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

// RegressionConfig drives the continuous-response extension experiment.
// Theorem II.1 covers bounded continuous responses as well as binary ones;
// the paper's numerical section only exercises classification, so this
// harness closes that gap: Y = f(X) + noise·ε on the paper's input
// distribution, RMSE against f(X) on the unlabeled points, hard vs soft vs
// Nadaraya–Watson across a growing labeled size.
type RegressionConfig struct {
	// Noise is the response noise standard deviation.
	Noise float64
	// SweepN is the labeled-size grid.
	SweepN []int
	// M is the fixed unlabeled size.
	M int
	// Lambdas are the criterion curves.
	Lambdas []float64
	// Reps is the replication count.
	Reps int
	// Seed seeds the experiment.
	Seed int64
}

// RegressionDefaultConfig returns the standard regression extension.
func RegressionDefaultConfig(reps int, seed int64) RegressionConfig {
	return RegressionConfig{
		Noise:   0.2,
		SweepN:  []int{30, 100, 300, 900},
		M:       30,
		Lambdas: []float64{0, 0.01, 0.1, 5},
		Reps:    reps,
		Seed:    seed,
	}
}

func (c *RegressionConfig) validate() error {
	if c.Noise < 0 {
		return fmt.Errorf("experiments: regression noise=%v: %w", c.Noise, ErrParam)
	}
	if len(c.SweepN) == 0 || c.M < 1 {
		return fmt.Errorf("experiments: regression grid: %w", ErrParam)
	}
	for _, n := range c.SweepN {
		if n < 2 {
			return fmt.Errorf("experiments: regression n=%d: %w", n, ErrParam)
		}
	}
	if len(c.Lambdas) == 0 {
		return fmt.Errorf("experiments: regression lambdas: %w", ErrParam)
	}
	for _, l := range c.Lambdas {
		if l < 0 {
			return fmt.Errorf("experiments: regression λ=%v: %w", l, ErrParam)
		}
	}
	if c.Reps < 1 {
		return fmt.Errorf("experiments: regression reps=%d: %w", c.Reps, ErrParam)
	}
	return nil
}

// regressionSurface is the smooth bounded test function used by the
// extension: a sinusoidal ridge over the first two coordinates, range ⊂
// [-1, 1], satisfying Theorem II.1's boundedness requirement.
func regressionSurface(x []float64) float64 {
	return math.Sin(2*math.Pi*x[0]) * math.Cos(math.Pi*x[1])
}

// RunRegression executes the regression extension and returns a sweep with
// one curve per λ plus a Nadaraya–Watson curve.
func RunRegression(cfg RegressionConfig) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{Name: "regression (continuous-response extension)", XLabel: "n", Metric: "RMSE"}
	for _, l := range cfg.Lambdas {
		res.Series = append(res.Series, Series{Label: lambdaLabel(l), Lambda: l})
	}
	nwIdx := len(res.Series)
	res.Series = append(res.Series, Series{Label: "NW", Lambda: math.NaN()})

	root := randx.New(cfg.Seed)
	for _, n := range cfg.SweepN {
		accs := make([]stats.Welford, len(res.Series))
		rng := root.Split()
		for rep := 0; rep < cfg.Reps; rep++ {
			vals, err := regressionReplicate(rng.Split(), cfg, n, nwIdx)
			if err != nil {
				return nil, fmt.Errorf("experiments: regression n=%d rep %d: %w", n, rep, err)
			}
			for i, v := range vals {
				accs[i].Add(v)
			}
		}
		for i := range res.Series {
			res.Series[i].Points = append(res.Series[i].Points, Point{
				X:      float64(n),
				Mean:   accs[i].Mean(),
				StdErr: accs[i].StdErr(),
				Reps:   accs[i].N(),
			})
		}
	}
	return res, nil
}

func regressionReplicate(rng *randx.RNG, cfg RegressionConfig, n, nwIdx int) ([]float64, error) {
	ds, err := synth.GenerateRegression(rng, regressionSurface, cfg.Noise, n, cfg.M)
	if err != nil {
		return nil, err
	}
	h, err := kernel.PaperBandwidth(n, synth.Dim)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(kernel.Gaussian, h)
	if err != nil {
		return nil, err
	}
	builder, err := graph.NewBuilder(k)
	if err != nil {
		return nil, err
	}
	g, err := builder.Build(ds.X)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
	if err != nil {
		return nil, err
	}
	truth := ds.QUnlabeled()

	out := make([]float64, nwIdx+1)
	for i, l := range cfg.Lambdas {
		sol, err := core.SolveSoft(p, l)
		if err != nil {
			return nil, err
		}
		r, err := stats.RMSE(sol.FUnlabeled, truth)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	nw, err := core.NadarayaWatson(p)
	if err != nil {
		return nil, err
	}
	r, err := stats.RMSE(nw, truth)
	if err != nil {
		return nil, err
	}
	out[nwIdx] = r
	return out, nil
}
