package experiments

import (
	"fmt"
	"math"

	"repro/internal/coil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

// KernelsConfig drives the kernel ablation: Theorem II.1 requires a
// bounded, compactly supported kernel bounded below near the origin; the
// paper's experiments use the Gaussian RBF (not compactly supported). This
// experiment runs the hard criterion under several kernels on Model 1 and
// reports RMSE across n, showing the consistency behaviour is shared.
type KernelsConfig struct {
	// Kernels are the profiles to compare.
	Kernels []kernel.Kind
	// BandwidthScale multiplies the paper bandwidth for the compact
	// kernels (their support must cover enough neighbours; default 3).
	BandwidthScale float64
	// SweepN is the labeled-size grid; M the fixed unlabeled size.
	SweepN []int
	M      int
	// Reps is the replication count.
	Reps int
	// Seed seeds the experiment.
	Seed int64
}

// KernelsDefaultConfig returns the standard ablation.
func KernelsDefaultConfig(reps int, seed int64) KernelsConfig {
	return KernelsConfig{
		Kernels:        []kernel.Kind{kernel.Gaussian, kernel.Uniform, kernel.Epanechnikov, kernel.Tricube},
		BandwidthScale: 3,
		SweepN:         []int{50, 150, 450},
		M:              30,
		Reps:           reps,
		Seed:           seed,
	}
}

func (c *KernelsConfig) validate() error {
	if len(c.Kernels) == 0 {
		return fmt.Errorf("experiments: kernels: empty kernel list: %w", ErrParam)
	}
	if c.BandwidthScale <= 0 {
		return fmt.Errorf("experiments: kernels scale=%v: %w", c.BandwidthScale, ErrParam)
	}
	if len(c.SweepN) == 0 || c.M < 1 {
		return fmt.Errorf("experiments: kernels grid: %w", ErrParam)
	}
	for _, n := range c.SweepN {
		if n < 2 {
			return fmt.Errorf("experiments: kernels n=%d: %w", n, ErrParam)
		}
	}
	if c.Reps < 1 {
		return fmt.Errorf("experiments: kernels reps=%d: %w", c.Reps, ErrParam)
	}
	return nil
}

// RunKernels executes the ablation: one curve per kernel, hard criterion
// RMSE across n.
func RunKernels(cfg KernelsConfig) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{Name: "kernels (Theorem II.1 conditions ablation)", XLabel: "n", Metric: "RMSE"}
	for _, k := range cfg.Kernels {
		res.Series = append(res.Series, Series{Label: k.String(), Lambda: 0})
	}
	root := randx.New(cfg.Seed)
	for _, n := range cfg.SweepN {
		accs := make([]stats.Welford, len(cfg.Kernels))
		rng := root.Split()
		for rep := 0; rep < cfg.Reps; rep++ {
			repRng := rng.Split()
			ds, err := synth.Generate(repRng, synth.Model1, n, cfg.M)
			if err != nil {
				return nil, err
			}
			h, err := kernel.PaperBandwidth(n, synth.Dim)
			if err != nil {
				return nil, err
			}
			d2, err := kernel.PairwiseDist2(ds.X)
			if err != nil {
				return nil, err
			}
			truth := ds.QUnlabeled()
			for ki, kind := range cfg.Kernels {
				bw := h
				if kind.CompactSupport() {
					bw = h * cfg.BandwidthScale
				}
				kk, err := kernel.New(kind, bw)
				if err != nil {
					return nil, err
				}
				builder, err := graph.NewBuilder(kk)
				if err != nil {
					return nil, err
				}
				g, err := builder.BuildFromDist2(len(ds.X), d2)
				if err != nil {
					return nil, err
				}
				p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
				if err != nil {
					return nil, err
				}
				sol, err := core.SolveHard(p)
				if err != nil {
					// Compact kernels can disconnect an unlabeled point at
					// small n; record the worst-case error instead of
					// aborting the sweep (and note it via the metric).
					accs[ki].Add(worstCaseRMSE(truth))
					continue
				}
				r, err := stats.RMSE(sol.FUnlabeled, truth)
				if err != nil {
					return nil, err
				}
				accs[ki].Add(r)
			}
		}
		for i := range res.Series {
			res.Series[i].Points = append(res.Series[i].Points, Point{
				X:      float64(n),
				Mean:   accs[i].Mean(),
				StdErr: accs[i].StdErr(),
				Reps:   accs[i].N(),
			})
		}
	}
	return res, nil
}

// worstCaseRMSE is the error of always predicting 0.5 — the uninformative
// fallback charged when a kernel's support disconnects the graph.
func worstCaseRMSE(truth []float64) float64 {
	var ss float64
	for _, q := range truth {
		d := q - 0.5
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(truth)))
}

// COIL6Config drives the 6-class extension of Figure 5: the original COIL
// task before its binary reduction, solved one-vs-rest with argmax and
// scored by accuracy.
type COIL6Config struct {
	// PerClass is the number of images kept per class.
	PerClass int
	// Lambdas are the criterion curves.
	Lambdas []float64
	// Reps is the number of split repetitions (Setting20: 20% labeled).
	Reps int
	// Seed seeds the experiment.
	Seed int64
}

// COIL6DefaultConfig returns the standard 6-class configuration.
func COIL6DefaultConfig(perClass, reps int, seed int64) COIL6Config {
	return COIL6Config{
		PerClass: perClass,
		Lambdas:  []float64{0, 0.01, 0.1, 1},
		Reps:     reps,
		Seed:     seed,
	}
}

// RunCOIL6 executes the 6-class study and returns mean accuracy per λ.
func RunCOIL6(cfg COIL6Config) ([]Point, error) {
	if cfg.PerClass < 2 || len(cfg.Lambdas) == 0 || cfg.Reps < 1 {
		return nil, fmt.Errorf("experiments: coil6 config: %w", ErrParam)
	}
	for _, l := range cfg.Lambdas {
		if l < 0 {
			return nil, fmt.Errorf("experiments: coil6 λ=%v: %w", l, ErrParam)
		}
	}
	ds, err := coil.GenerateSized(cfg.Seed, cfg.PerClass)
	if err != nil {
		return nil, err
	}
	x := ds.X()
	classes := make([]int, len(ds.Images))
	for i := range ds.Images {
		classes[i] = ds.Images[i].Class
	}
	sigma, err := kernel.MedianHeuristic(x, 200000)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(kernel.Gaussian, sigma)
	if err != nil {
		return nil, err
	}
	builder, err := graph.NewBuilder(k)
	if err != nil {
		return nil, err
	}
	g, err := builder.Build(x)
	if err != nil {
		return nil, err
	}

	accs := make([]stats.Welford, len(cfg.Lambdas))
	root := randx.New(cfg.Seed + 1)
	for rep := 0; rep < cfg.Reps; rep++ {
		splits, err := coil.Splits(root.Split(), len(x), coil.Setting20)
		if err != nil {
			return nil, err
		}
		for _, sp := range splits {
			labels := make([]int, len(sp.Labeled))
			for i, idx := range sp.Labeled {
				labels[i] = classes[idx]
			}
			y := make([]float64, len(sp.Labeled))
			p, err := core.NewProblem(g, sp.Labeled, y)
			if err != nil {
				return nil, err
			}
			mp, err := core.BuildMulticlass(p, labels)
			if err != nil {
				return nil, err
			}
			truth := make([]int, 0, len(sp.Unlabeled))
			for _, idx := range p.Unlabeled() {
				truth = append(truth, classes[idx])
			}
			for li, l := range cfg.Lambdas {
				sol, err := mp.Solve(l, true)
				if err != nil {
					return nil, err
				}
				acc, err := sol.Accuracy(truth)
				if err != nil {
					return nil, err
				}
				accs[li].Add(acc)
			}
		}
	}
	out := make([]Point, len(cfg.Lambdas))
	for li, l := range cfg.Lambdas {
		out[li] = Point{X: l, Mean: accs[li].Mean(), StdErr: accs[li].StdErr(), Reps: accs[li].N()}
	}
	return out, nil
}
