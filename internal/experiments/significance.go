package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/synth"
)

// SignificanceConfig drives the paired-significance test of the paper's
// headline claim: the hard criterion's RMSE is lower than the soft
// criterion's at every tested λ. Each replication evaluates both criteria
// on the same dataset, so a paired t-test applies.
type SignificanceConfig struct {
	// Model selects the synthetic response model.
	Model synth.Model
	// N, M are the labeled/unlabeled sizes.
	N, M int
	// Lambdas are the soft-criterion values tested against λ=0.
	Lambdas []float64
	// Reps is the number of paired replications.
	Reps int
	// Seed seeds the experiment.
	Seed int64
}

// SignificanceDefaultConfig returns the standard setup.
func SignificanceDefaultConfig(reps int, seed int64) SignificanceConfig {
	return SignificanceConfig{
		Model:   synth.Model1,
		N:       200,
		M:       50,
		Lambdas: []float64{0.01, 0.1, 5},
		Reps:    reps,
		Seed:    seed,
	}
}

// SignificanceRow is the paired comparison of λ=0 against one soft λ.
type SignificanceRow struct {
	Lambda   float64
	HardMean float64
	SoftMean float64
	// Test is the paired t-test of hard−soft RMSE (negative MeanDiff means
	// the hard criterion wins).
	Test *stats.TTestResult
}

func (c *SignificanceConfig) validate() error {
	if c.N < 2 || c.M < 1 {
		return fmt.Errorf("experiments: significance n=%d m=%d: %w", c.N, c.M, ErrParam)
	}
	if len(c.Lambdas) == 0 {
		return fmt.Errorf("experiments: significance lambdas: %w", ErrParam)
	}
	for _, l := range c.Lambdas {
		if l <= 0 {
			return fmt.Errorf("experiments: significance λ=%v must be >0: %w", l, ErrParam)
		}
	}
	if c.Reps < 2 {
		return fmt.Errorf("experiments: significance reps=%d (need >=2): %w", c.Reps, ErrParam)
	}
	return nil
}

// RunSignificance executes the paired comparison.
func RunSignificance(cfg SignificanceConfig) ([]SignificanceRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hardRMSE := make([]float64, 0, cfg.Reps)
	softRMSE := make([][]float64, len(cfg.Lambdas))
	for i := range softRMSE {
		softRMSE[i] = make([]float64, 0, cfg.Reps)
	}

	root := randx.New(cfg.Seed)
	for rep := 0; rep < cfg.Reps; rep++ {
		rng := root.Split()
		ds, err := synth.Generate(rng, cfg.Model, cfg.N, cfg.M)
		if err != nil {
			return nil, err
		}
		h, err := kernel.PaperBandwidth(cfg.N, synth.Dim)
		if err != nil {
			return nil, err
		}
		k, err := kernel.New(kernel.Gaussian, h)
		if err != nil {
			return nil, err
		}
		builder, err := graph.NewBuilder(k)
		if err != nil {
			return nil, err
		}
		g, err := builder.Build(ds.X)
		if err != nil {
			return nil, err
		}
		p, err := core.NewProblemLabeledFirst(g, ds.YLabeled())
		if err != nil {
			return nil, err
		}
		truth := ds.QUnlabeled()

		hard, err := core.SolveHard(p)
		if err != nil {
			return nil, err
		}
		r, err := stats.RMSE(hard.FUnlabeled, truth)
		if err != nil {
			return nil, err
		}
		hardRMSE = append(hardRMSE, r)
		for li, l := range cfg.Lambdas {
			sol, err := core.SolveSoft(p, l)
			if err != nil {
				return nil, err
			}
			r, err := stats.RMSE(sol.FUnlabeled, truth)
			if err != nil {
				return nil, err
			}
			softRMSE[li] = append(softRMSE[li], r)
		}
	}

	rows := make([]SignificanceRow, len(cfg.Lambdas))
	for li, l := range cfg.Lambdas {
		test, err := stats.PairedTTest(hardRMSE, softRMSE[li])
		if err != nil {
			return nil, err
		}
		hm, err := stats.Mean(hardRMSE)
		if err != nil {
			return nil, err
		}
		sm, err := stats.Mean(softRMSE[li])
		if err != nil {
			return nil, err
		}
		rows[li] = SignificanceRow{Lambda: l, HardMean: hm, SoftMean: sm, Test: test}
	}
	return rows, nil
}
