package experiments

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestWriteBaselineCSV(t *testing.T) {
	rows := []BaselineRow{
		{Method: "hard (λ=0)", Mean: 0.12, StdErr: 0.01, Reps: 5},
		{Method: "a,b", Mean: 0.2, StdErr: 0.02, Reps: 5},
	}
	var sb strings.Builder
	if err := WriteBaselineCSV(rows, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "method,") {
		t.Fatalf("header: %s", lines[0])
	}
	if strings.Contains(lines[2], "a,b") {
		t.Fatal("comma in method name must be escaped")
	}
	if err := WriteBaselineCSV(nil, &sb); !errors.Is(err, ErrParam) {
		t.Fatal("empty must error")
	}
}

func TestWriteDiagCSV(t *testing.T) {
	rows := []DiagRow{{N: 30, MassRatio: 0.5, HardNWGap: 0.08, ContractionRate: 0.4, Reps: 10}}
	var sb strings.Builder
	if err := WriteDiagCSV(rows, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "30,0.500000,0.080000,0.400000,10") {
		t.Fatalf("csv: %s", sb.String())
	}
	if err := WriteDiagCSV(nil, &sb); !errors.Is(err, ErrParam) {
		t.Fatal("empty must error")
	}
}

func TestWriteSignificanceCSV(t *testing.T) {
	rows := []SignificanceRow{{
		Lambda:   0.1,
		HardMean: 0.12,
		SoftMean: 0.16,
		Test:     &stats.TTestResult{T: -5.5, DF: 9, P: 0.0004, MeanDiff: -0.04},
	}}
	var sb strings.Builder
	if err := WriteSignificanceCSV(rows, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.1,0.120000,0.160000,-5.5000,9,") {
		t.Fatalf("csv: %s", sb.String())
	}
	if err := WriteSignificanceCSV(nil, &sb); !errors.Is(err, ErrParam) {
		t.Fatal("empty must error")
	}
}
