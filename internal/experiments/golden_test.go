package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFigureGoldenFirstRow regression-tests the committed figure tables in
// results/ against a live recompute. Re-running a full figure is minutes of
// work, but RunSynthetic splits its root RNG once per axis point in order, so
// truncating the sweep to its first grid value reproduces the first table row
// (and the header) byte for byte at a fraction of the cost. Any drift in the
// data generator, bandwidth rule, graph builder, solver pipeline, or markdown
// renderer shows up here.
func TestFigureGoldenFirstRow(t *testing.T) {
	const (
		goldenReps = 50
		goldenSeed = 1
	)
	cases := []struct {
		name string
		cfg  SyntheticConfig
	}{
		{"fig1", Fig1Config(goldenReps, goldenSeed)},
		{"fig2", Fig2Config(goldenReps, goldenSeed)},
		{"fig3", Fig3Config(goldenReps, goldenSeed)},
		{"fig4", Fig4Config(goldenReps, goldenSeed)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			golden, err := os.ReadFile(filepath.Join("..", "..", "results", tc.name+".md"))
			if err != nil {
				t.Skipf("golden file missing: %v", err)
			}
			cfg := tc.cfg
			if len(cfg.SweepN) > 0 {
				cfg.SweepN = cfg.SweepN[:1]
			} else {
				cfg.SweepM = cfg.SweepM[:1]
			}
			res, err := RunSynthetic(tc.name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := res.WriteMarkdown(&sb); err != nil {
				t.Fatal(err)
			}
			got := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
			want := strings.Split(strings.TrimRight(string(golden), "\n"), "\n")
			// Truncated output: header, blank, column header, separator, row 1.
			if len(got) != 5 {
				t.Fatalf("truncated sweep rendered %d lines, want 5:\n%s", len(got), sb.String())
			}
			if len(want) < 5 {
				t.Fatalf("golden file has only %d lines", len(want))
			}
			for i := 0; i < 5; i++ {
				if got[i] != want[i] {
					t.Errorf("line %d drifted\n got: %q\nwant: %q", i+1, got[i], want[i])
				}
			}
		})
	}
}
