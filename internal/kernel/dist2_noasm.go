//go:build !amd64

package kernel

// useAVX is always false off amd64; dist2x4 takes the scalar path.
const useAVX = false

// dist2x4Lanes is only reachable when useAVX is true, so never here.
func dist2x4Lanes(x, y0, y1, y2, y3 *float64, nq int, out *[16]float64) {
	panic("kernel: dist2x4Lanes called without AVX support")
}

// dist2Row8 is only reachable when useAVX is true, so never here.
func dist2Row8(x, y0, y1, y2, y3, y4, y5, y6, y7 *float64, d int, out *float64) {
	panic("kernel: dist2Row8 called without AVX support")
}
