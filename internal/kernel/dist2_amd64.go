//go:build amd64

package kernel

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (only called when CPUID reports
// OSXSAVE, so the instruction is guaranteed to exist).
func xgetbv() (eax, edx uint32)

// dist2x4Lanes accumulates squared differences of x against four rows over
// the first nq dimensions (nq a multiple of 4) into out, four mod-4 lanes
// per row, matching dist2Lanes exactly. Implemented in dist2_amd64.s with
// AVX; separate VSUBPD/VMULPD/VADDPD (no FMA contraction) keep the rounding
// identical to the scalar path.
//
//go:noescape
func dist2x4Lanes(x, y0, y1, y2, y3 *float64, nq int, out *[16]float64)

// dist2Row8 computes the eight finished squared distances of x against
// eight rows, including scalar tail dimensions and lane reduction, in the
// exact operation order of the scalar dist2.
//
//go:noescape
func dist2Row8(x, y0, y1, y2, y3, y4, y5, y6, y7 *float64, d int, out *float64)

// useAVX reports whether the CPU and OS support AVX (VEX-encoded ymm ops
// and ymm state saving).
var useAVX = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return false
	}
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	_, _, ecx, _ := cpuid(1, 0)
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
	eax, _ := xgetbv()
	return eax&0x6 == 0x6
}()
