package kernel

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// TestPairwiseDist2WorkersBitwiseIdentical asserts the row-blocked parallel
// distance pass matches the serial path exactly for every worker count.
func TestPairwiseDist2WorkersBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 17, 130, 301} {
		x := make([][]float64, n)
		for i := range x {
			x[i] = make([]float64, 7)
			for j := range x[i] {
				x[i][j] = rng.NormFloat64()
			}
		}
		ref, err := PairwiseDist2Workers(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 4, runtime.GOMAXPROCS(0)} {
			got, err := PairwiseDist2Workers(x, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for k := range ref {
				if got[k] != ref[k] {
					t.Fatalf("n=%d workers=%d: element %d = %v, want %v (must be bitwise-identical)",
						n, workers, k, got[k], ref[k])
				}
			}
		}
	}
}

// TestPairwiseDist2MatchesDirect checks entries against dist2 on the same
// pairs, plus symmetry and a zero diagonal.
func TestPairwiseDist2MatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n, d = 40, 5
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	d2, err := PairwiseDist2(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if d2[i*n+i] != 0 {
			t.Fatalf("diagonal %d = %v", i, d2[i*n+i])
		}
		for j := 0; j < n; j++ {
			if d2[i*n+j] != d2[j*n+i] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
			if got, want := d2[i*n+j], dist2(x[i], x[j]); got != want {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestDist2BatchedMatchesScalar pins the batched distance kernels (the AVX
// path on amd64, the scalar lane path elsewhere) to dist2 bitwise, across
// every unroll remainder.
func TestDist2BatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for d := 0; d <= 13; d++ {
		x := make([]float64, d)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var ys [8][]float64
		for p := range ys {
			ys[p] = make([]float64, d)
			for i := range ys[p] {
				ys[p][i] = rng.NormFloat64()
			}
		}
		var quad [4]float64
		dist2x4(x, ys[0], ys[1], ys[2], ys[3], &quad)
		for p := 0; p < 4; p++ {
			if want := dist2(x, ys[p]); quad[p] != want {
				t.Fatalf("d=%d: dist2x4[%d] = %v, want %v (must be bitwise-identical)", d, p, quad[p], want)
			}
		}
		var oct [8]float64
		dist2x8(x, &ys, &oct)
		for p := 0; p < 8; p++ {
			if want := dist2(x, ys[p]); oct[p] != want {
				t.Fatalf("d=%d: dist2x8[%d] = %v, want %v (must be bitwise-identical)", d, p, oct[p], want)
			}
		}
	}
}

// TestDist2UnrolledTail exercises every unroll remainder (len % 4).
func TestDist2UnrolledTail(t *testing.T) {
	for d := 0; d <= 9; d++ {
		x := make([]float64, d)
		y := make([]float64, d)
		var want float64
		for i := 0; i < d; i++ {
			x[i] = float64(i + 1)
			y[i] = float64(2*i) - 0.5
			diff := x[i] - y[i]
			want += diff * diff
		}
		got := dist2(x, y)
		if math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("d=%d: dist2 = %v, want %v", d, got, want)
		}
	}
}
