package kernel

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{Gaussian, "gaussian"},
		{Uniform, "uniform"},
		{Epanechnikov, "epanechnikov"},
		{Triangular, "triangular"},
		{Tricube, "tricube"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		give string
		want Kind
	}{
		{"gaussian", Gaussian},
		{"rbf", Gaussian},
		{"uniform", Uniform},
		{"boxcar", Uniform},
		{"epanechnikov", Epanechnikov},
		{"triangular", Triangular},
		{"tricube", Tricube},
	}
	for _, tt := range tests {
		got, err := Parse(tt.give)
		if err != nil || got != tt.want {
			t.Errorf("Parse(%q) = %v, %v", tt.give, got, err)
		}
	}
	if _, err := Parse("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("want ErrUnknown, got %v", err)
	}
}

func TestCompactSupport(t *testing.T) {
	if Gaussian.CompactSupport() {
		t.Fatal("Gaussian must not report compact support")
	}
	for _, k := range []Kind{Uniform, Epanechnikov, Triangular, Tricube} {
		if !k.CompactSupport() {
			t.Fatalf("%v must report compact support", k)
		}
	}
}

func TestProfileAtZeroIsOne(t *testing.T) {
	for _, k := range []Kind{Gaussian, Uniform, Epanechnikov, Triangular, Tricube} {
		if got := k.Profile(0); got != 1 {
			t.Errorf("%v.Profile(0) = %v, want 1", k, got)
		}
	}
}

func TestProfileCompactKernelsVanishOutsideSupport(t *testing.T) {
	for _, k := range []Kind{Uniform, Epanechnikov, Triangular, Tricube} {
		if got := k.Profile(1.001); got != 0 {
			t.Errorf("%v.Profile(1.001) = %v, want 0", k, got)
		}
	}
	if got := Gaussian.Profile(3); got <= 0 {
		t.Fatal("Gaussian must stay positive")
	}
}

func TestProfileKnownValues(t *testing.T) {
	tests := []struct {
		kind Kind
		u    float64
		want float64
	}{
		{Gaussian, 1, math.Exp(-1)},
		{Uniform, 0.5, 1},
		{Epanechnikov, 0.5, 0.75},
		{Triangular, 0.25, 0.75},
		{Tricube, 0.5, math.Pow(1-0.125, 3)},
	}
	for _, tt := range tests {
		if got := tt.kind.Profile(tt.u); math.Abs(got-tt.want) > 1e-15 {
			t.Errorf("%v.Profile(%v) = %v, want %v", tt.kind, tt.u, got, tt.want)
		}
	}
}

// Property: every profile is bounded in [0,1], even (symmetric in u), and
// nonincreasing in |u| — conditions (i) and (iii) of Theorem II.1 follow.
func TestProfileBoundsAndMonotonicityProperty(t *testing.T) {
	kinds := []Kind{Gaussian, Uniform, Epanechnikov, Triangular, Tricube}
	f := func(u1, u2 float64) bool {
		u1, u2 = math.Abs(u1), math.Abs(u2)
		if math.IsNaN(u1) || math.IsNaN(u2) || math.IsInf(u1, 0) || math.IsInf(u2, 0) {
			return true
		}
		lo, hi := math.Min(u1, u2), math.Max(u1, u2)
		for _, k := range kinds {
			pl, ph := k.Profile(lo), k.Profile(hi)
			if pl < 0 || pl > 1 || ph < 0 || ph > 1 {
				return false
			}
			if ph > pl+1e-12 {
				return false
			}
			if k.Profile(-lo) != pl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, h := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(Gaussian, h); !errors.Is(err, ErrBandwidth) {
			t.Errorf("New(h=%v): want ErrBandwidth, got %v", h, err)
		}
	}
	k, err := New(Uniform, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k.Kind() != Uniform || k.Bandwidth() != 2 {
		t.Fatal("accessor mismatch")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad bandwidth must panic")
		}
	}()
	MustNew(Gaussian, -1)
}

func TestWeightGaussianMatchesPaperRBF(t *testing.T) {
	// Paper: w_ij = exp(-||xi-xj||²/σ²).
	k := MustNew(Gaussian, 2) // σ = 2
	x := []float64{0, 0}
	y := []float64{1, 1} // squared distance 2
	want := math.Exp(-2.0 / 4.0)
	if got := k.Weight(x, y); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Weight = %v, want %v", got, want)
	}
}

func TestWeightDist2ConsistentWithWeight(t *testing.T) {
	for _, kind := range []Kind{Gaussian, Uniform, Epanechnikov, Triangular, Tricube} {
		k := MustNew(kind, 1.5)
		x := []float64{0.3, -0.2, 1}
		y := []float64{-0.5, 0.9, 0.4}
		d2 := 0.8*0.8 + 1.1*1.1 + 0.6*0.6
		if got, want := k.WeightDist2(d2), k.Weight(x, y); math.Abs(got-want) > 1e-14 {
			t.Errorf("%v: WeightDist2 = %v, Weight = %v", kind, got, want)
		}
	}
}

func TestWeightIdenticalPointsIsOne(t *testing.T) {
	for _, kind := range []Kind{Gaussian, Uniform, Epanechnikov, Triangular, Tricube} {
		k := MustNew(kind, 0.7)
		x := []float64{1, 2, 3}
		if got := k.Weight(x, x); got != 1 {
			t.Errorf("%v: Weight(x,x) = %v, want 1", kind, got)
		}
	}
}

func TestWeightPanicsOnDimMismatch(t *testing.T) {
	k := MustNew(Gaussian, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch must panic")
		}
	}()
	k.Weight([]float64{1}, []float64{1, 2})
}

func TestPaperBandwidth(t *testing.T) {
	h, err := PaperBandwidth(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(math.Log(100)/100, 0.2)
	if math.Abs(h-want) > 1e-15 {
		t.Fatalf("PaperBandwidth = %v, want %v", h, want)
	}
	if _, err := PaperBandwidth(1, 5); err == nil {
		t.Fatal("n=1 must error")
	}
	if _, err := PaperBandwidth(10, 0); err == nil {
		t.Fatal("p=0 must error")
	}
}

func TestPaperBandwidthShrinks(t *testing.T) {
	// h_n → 0 and n·h_n^d → ∞ are the Theorem II.1 conditions; check the
	// first numerically and the trend of the second.
	h100, _ := PaperBandwidth(100, 5)
	h10000, _ := PaperBandwidth(10000, 5)
	if h10000 >= h100 {
		t.Fatal("bandwidth must shrink with n")
	}
	nh100 := 100 * math.Pow(h100, 5)
	nh10000 := 10000 * math.Pow(h10000, 5)
	if nh10000 <= nh100 {
		t.Fatal("n·h^d must grow with n")
	}
}

func TestMedianHeuristic(t *testing.T) {
	x := [][]float64{{0}, {1}, {3}}
	// Squared distances: 1, 9, 4 → median 4 → σ = 2.
	sigma, err := MedianHeuristic(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-2) > 1e-15 {
		t.Fatalf("MedianHeuristic = %v, want 2", sigma)
	}
}

func TestMedianHeuristicEvenCount(t *testing.T) {
	x := [][]float64{{0}, {2}} // one pair, squared distance 4
	sigma, err := MedianHeuristic(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sigma != 2 {
		t.Fatalf("MedianHeuristic = %v, want 2", sigma)
	}
}

func TestMedianHeuristicIdenticalPoints(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	sigma, err := MedianHeuristic(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sigma != 1 {
		t.Fatalf("identical points fallback = %v, want 1", sigma)
	}
}

func TestMedianHeuristicSubsampled(t *testing.T) {
	x := make([][]float64, 60)
	for i := range x {
		x[i] = []float64{float64(i)}
	}
	full, err := MedianHeuristic(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := MedianHeuristic(x, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-sub)/full > 0.5 {
		t.Fatalf("subsampled median %v too far from full %v", sub, full)
	}
}

func TestMedianHeuristicErrors(t *testing.T) {
	if _, err := MedianHeuristic(nil, 0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := MedianHeuristic([][]float64{{1}}, 0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty for single point, got %v", err)
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5}
	h, err := SilvermanBandwidth(sample)
	if err != nil {
		t.Fatal(err)
	}
	sd := math.Sqrt(2.5) // sample sd of 1..5
	want := 1.06 * sd * math.Pow(5, -0.2)
	if math.Abs(h-want) > 1e-14 {
		t.Fatalf("Silverman = %v, want %v", h, want)
	}
	if _, err := SilvermanBandwidth([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := SilvermanBandwidth([]float64{2, 2, 2}); !errors.Is(err, ErrBandwidth) {
		t.Fatalf("want ErrBandwidth for zero variance, got %v", err)
	}
}

func TestPairwiseDist2(t *testing.T) {
	x := [][]float64{{0, 0}, {3, 4}}
	d2, err := PairwiseDist2(x)
	if err != nil {
		t.Fatal(err)
	}
	if d2[0] != 0 || d2[3] != 0 || d2[1] != 25 || d2[2] != 25 {
		t.Fatalf("PairwiseDist2 = %v", d2)
	}
	if _, err := PairwiseDist2(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}
