// Package kernel provides the similarity kernels and bandwidth rules used to
// build the graphs in the reproduction.
//
// Theorem II.1 of the paper requires a kernel K that is (i) bounded,
// (ii) compactly supported, and (iii) bounded below by β > 0 on a ball
// around the origin. The Uniform, Epanechnikov, Triangular, and Tricube
// kernels satisfy all three; the Gaussian RBF kernel (used in the paper's
// experiments) violates (ii) but is included because the paper's own
// numerical studies use it on truncated inputs.
package kernel

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

var (
	// ErrBandwidth is returned for non-positive bandwidths.
	ErrBandwidth = errors.New("kernel: bandwidth must be positive")
	// ErrEmpty is returned when an input sample is empty.
	ErrEmpty = errors.New("kernel: empty input")
	// ErrUnknown is returned by Parse for unrecognized kernel names.
	ErrUnknown = errors.New("kernel: unknown kernel name")
)

// Kind enumerates the built-in kernel profiles.
type Kind int

// Supported kernel kinds.
const (
	Gaussian Kind = iota + 1
	Uniform
	Epanechnikov
	Triangular
	Tricube
)

// String returns the lowercase kernel name.
func (k Kind) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Uniform:
		return "uniform"
	case Epanechnikov:
		return "epanechnikov"
	case Triangular:
		return "triangular"
	case Tricube:
		return "tricube"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parse maps a kernel name to its Kind.
func Parse(name string) (Kind, error) {
	switch name {
	case "gaussian", "rbf":
		return Gaussian, nil
	case "uniform", "boxcar":
		return Uniform, nil
	case "epanechnikov":
		return Epanechnikov, nil
	case "triangular":
		return Triangular, nil
	case "tricube":
		return Tricube, nil
	default:
		return 0, fmt.Errorf("kernel: %q: %w", name, ErrUnknown)
	}
}

// CompactSupport reports whether the kernel profile has compact support
// (condition (ii) of Theorem II.1).
func (k Kind) CompactSupport() bool { return k != Gaussian }

// Profile evaluates the kernel profile at the scaled distance u = ‖x−y‖/h.
// Profiles are normalized so Profile(0) = 1, matching the paper's similarity
// convention 0 ≤ w_ij ≤ 1.
func (k Kind) Profile(u float64) float64 {
	u = math.Abs(u)
	switch k {
	case Gaussian:
		return math.Exp(-u * u)
	case Uniform:
		if u <= 1 {
			return 1
		}
		return 0
	case Epanechnikov:
		if u <= 1 {
			return 1 - u*u
		}
		return 0
	case Triangular:
		if u <= 1 {
			return 1 - u
		}
		return 0
	case Tricube:
		if u <= 1 {
			c := 1 - u*u*u
			return c * c * c
		}
		return 0
	default:
		return 0
	}
}

// K is a similarity kernel with bandwidth h: w(x, y) = Profile(‖x−y‖/h).
type K struct {
	kind Kind
	h    float64
}

// New returns a kernel of the given kind and bandwidth h > 0.
func New(kind Kind, h float64) (*K, error) {
	if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		return nil, fmt.Errorf("kernel: h=%v: %w", h, ErrBandwidth)
	}
	return &K{kind: kind, h: h}, nil
}

// MustNew is New for package-internal constants; it panics on invalid input.
func MustNew(kind Kind, h float64) *K {
	k, err := New(kind, h)
	if err != nil {
		panic(err)
	}
	return k
}

// Kind returns the kernel profile kind.
func (k *K) Kind() Kind { return k.kind }

// Bandwidth returns h.
func (k *K) Bandwidth() float64 { return k.h }

// Weight returns the similarity of x and y.
func (k *K) Weight(x, y []float64) float64 {
	return k.WeightDist2(dist2(x, y))
}

// WeightDist2 returns the similarity for a precomputed squared distance.
// Precomputing distances lets graph builders avoid re-deriving them per λ.
func (k *K) WeightDist2(d2 float64) float64 {
	if k.kind == Gaussian {
		// exp(-d²/h²) without the sqrt round-trip.
		return math.Exp(-d2 / (k.h * k.h))
	}
	return k.kind.Profile(math.Sqrt(d2) / k.h)
}

// dist2Lanes accumulates the squared differences of the first nq elements
// (nq a multiple of 4) into four lanes, lane l taking dimensions i ≡ l
// (mod 4). The four independent accumulators break the loop-carried
// dependency on a single sum, letting the FP adds pipeline; the lane
// convention is shared with the AVX kernel so scalar and vector paths are
// bitwise-identical.
func dist2Lanes(x, y []float64, nq int) (s0, s1, s2, s3 float64) {
	y = y[:len(x)] // bounds-check elimination hint
	for i := 0; i+4 <= nq; i += 4 {
		d0 := x[i] - y[i]
		d1 := x[i+1] - y[i+1]
		d2 := x[i+2] - y[i+2]
		d3 := x[i+3] - y[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	return s0, s1, s2, s3
}

// Dist2 returns the squared Euclidean distance ‖x−y‖². It uses the same
// four-lane accumulation as the pairwise matrix pass, so the value is
// bitwise-identical to the corresponding PairwiseDist2 entry (in either
// argument order: (a−b)² and (b−a)² are the same float). The spatial
// indexes rely on that identity to reproduce brute-force graphs exactly.
func Dist2(x, y []float64) float64 { return dist2(x, y) }

// Dist2Rows fills out[i] with ‖q−rows[i]‖², batching the rows through the
// multi-row distance kernels (AVX on amd64 hosts, the same path as the
// pairwise matrix). Every entry is bitwise-identical to Dist2(q, rows[i]) —
// the lane convention is shared — so batch evaluation is a pure throughput
// optimization: it amortizes the loads of q and the loop overhead across
// rows. The serving batch path leans on this to stream one anchor block
// against many queries.
func Dist2Rows(q []float64, rows [][]float64, out []float64) {
	if len(out) < len(rows) {
		panic(errors.New("kernel: Dist2Rows output shorter than rows"))
	}
	i := 0
	var oct [8]float64
	var octRows [8][]float64
	for ; i+8 <= len(rows); i += 8 {
		copy(octRows[:], rows[i:i+8])
		dist2x8(q, &octRows, &oct)
		copy(out[i:i+8], oct[:])
	}
	if i+4 <= len(rows) {
		var quad [4]float64
		dist2x4(q, rows[i], rows[i+1], rows[i+2], rows[i+3], &quad)
		copy(out[i:i+4], quad[:])
		i += 4
	}
	for ; i < len(rows); i++ {
		out[i] = dist2(q, rows[i])
	}
}

func dist2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(errors.New("kernel: dimension mismatch"))
	}
	nq := len(x) &^ 3
	s0, s1, s2, s3 := dist2Lanes(x, y, nq)
	for i := nq; i < len(x); i++ {
		d := x[i] - y[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// dist2x4 computes dist2 of x against four rows in one pass, writing the
// results to out. The rows share the x loads and loop overhead, and on
// amd64 hosts with AVX the quad runs vectorized (see dist2_amd64.s); the
// scalar pairwise pass is load-throughput-bound, so batching pairs is the
// only lever left past loop unrolling. Each pair accumulates in exactly
// the lane order dist2 uses, so results are bitwise-identical to four
// separate dist2 calls on every architecture.
func dist2x4(x, y0, y1, y2, y3 []float64, out *[4]float64) {
	d := len(x)
	if len(y0) != d || len(y1) != d || len(y2) != d || len(y3) != d {
		panic(errors.New("kernel: dimension mismatch"))
	}
	nq := d &^ 3
	var lanes [16]float64
	if useAVX && nq >= 4 {
		dist2x4Lanes(&x[0], &y0[0], &y1[0], &y2[0], &y3[0], nq, &lanes)
	} else {
		lanes[0], lanes[1], lanes[2], lanes[3] = dist2Lanes(x, y0, nq)
		lanes[4], lanes[5], lanes[6], lanes[7] = dist2Lanes(x, y1, nq)
		lanes[8], lanes[9], lanes[10], lanes[11] = dist2Lanes(x, y2, nq)
		lanes[12], lanes[13], lanes[14], lanes[15] = dist2Lanes(x, y3, nq)
	}
	ys := [4][]float64{y0, y1, y2, y3}
	for p := 0; p < 4; p++ {
		s0, s1, s2, s3 := lanes[4*p], lanes[4*p+1], lanes[4*p+2], lanes[4*p+3]
		y := ys[p]
		for i := nq; i < d; i++ {
			dd := x[i] - y[i]
			s0 += dd * dd
		}
		out[p] = (s0 + s1) + (s2 + s3)
	}
}

// dist2x8 is the eight-row variant of dist2x4; on amd64 with AVX the whole
// computation, tail and reduction included, runs in dist2Row8.
func dist2x8(x []float64, ys *[8][]float64, out *[8]float64) {
	d := len(x)
	for _, y := range ys {
		if len(y) != d {
			panic(errors.New("kernel: dimension mismatch"))
		}
	}
	if d == 0 {
		*out = [8]float64{}
		return
	}
	if useAVX {
		dist2Row8(&x[0], &ys[0][0], &ys[1][0], &ys[2][0], &ys[3][0],
			&ys[4][0], &ys[5][0], &ys[6][0], &ys[7][0], d, &out[0])
		return
	}
	nq := d &^ 3
	for p := 0; p < 8; p++ {
		s0, s1, s2, s3 := dist2Lanes(x, ys[p], nq)
		y := ys[p]
		for i := nq; i < d; i++ {
			dd := x[i] - y[i]
			s0 += dd * dd
		}
		out[p] = (s0 + s1) + (s2 + s3)
	}
}

// PaperBandwidth returns the bandwidth h_n = (log n / n)^{1/p} used in the
// paper's synthetic studies (p = input dimension = 5 there). It requires
// n >= 2 so that log n > 0.
func PaperBandwidth(n, p int) (float64, error) {
	if n < 2 || p < 1 {
		return 0, fmt.Errorf("kernel: PaperBandwidth(n=%d, p=%d): %w", n, p, ErrEmpty)
	}
	return math.Pow(math.Log(float64(n))/float64(n), 1/float64(p)), nil
}

// MedianHeuristic returns sqrt(median of squared pairwise distances), the σ
// used for the paper's COIL experiment (there σ² = median squared distance).
// With maxPairs > 0 the median is computed over a deterministic subsample of
// pairs to bound cost on large inputs.
func MedianHeuristic(x [][]float64, maxPairs int) (float64, error) {
	n := len(x)
	if n < 2 {
		return 0, ErrEmpty
	}
	total := n * (n - 1) / 2
	var d2s []float64
	if maxPairs > 0 && total > maxPairs {
		// Deterministic stride subsample over the flattened pair index.
		stride := total / maxPairs
		if stride < 1 {
			stride = 1
		}
		d2s = make([]float64, 0, maxPairs+1)
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if idx%stride == 0 {
					d2s = append(d2s, dist2(x[i], x[j]))
				}
				idx++
			}
		}
	} else {
		d2s = make([]float64, 0, total)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d2s = append(d2s, dist2(x[i], x[j]))
			}
		}
	}
	sort.Float64s(d2s)
	med := median(d2s)
	if med <= 0 {
		// All points identical: fall back to 1 so w ≡ Profile(0) = 1,
		// matching the paper's Section III toy construction.
		return 1, nil
	}
	return math.Sqrt(med), nil
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 1.06 σ̂ n^{-1/5} for a single coordinate sample, a standard reference rule
// for kernel regression baselines.
func SilvermanBandwidth(sample []float64) (float64, error) {
	n := len(sample)
	if n < 2 {
		return 0, ErrEmpty
	}
	var mean float64
	for _, v := range sample {
		mean += v
	}
	mean /= float64(n)
	var ss float64
	for _, v := range sample {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	if sd == 0 {
		return 0, fmt.Errorf("kernel: zero variance sample: %w", ErrBandwidth)
	}
	return 1.06 * sd * math.Pow(float64(n), -0.2), nil
}

// PairwiseDist2 returns the full matrix of squared Euclidean distances as a
// flat row-major slice of length n*n. Shared by graph builders so the O(n²d)
// distance pass happens once per dataset rather than once per λ value.
// It runs on all available cores; see PairwiseDist2Workers.
func PairwiseDist2(x [][]float64) ([]float64, error) {
	return PairwiseDist2Workers(x, 0)
}

// PairwiseDist2Workers is PairwiseDist2 with an explicit worker count
// (workers <= 0 selects runtime.GOMAXPROCS(0), workers == 1 runs serially on
// the calling goroutine). Each element d²(i,j) is computed independently
// from x[i] and x[j], so the output is bitwise-identical for every worker
// count.
//
// Work is row-blocked over the upper triangle: the worker that owns row i
// computes d²(i,j) for all j > i. Rows are over-decomposed into chunks to
// balance the triangular load profile (early rows carry more pairs than
// late ones), and within a chunk the j loop is tiled so the tile of points
// stays cache-resident while every row of the chunk streams against it —
// without tiling the pass re-reads all of x from memory for each row. The
// lower triangle is filled per tile right after the tile is computed, a
// cache-blocked transpose of hot data; mirroring element-by-element inside
// the pair loop would scatter one write per element across n distinct
// cache lines.
//
// distTilePts rows of x per tile: at d = 50 a tile is ~75 KiB, safely
// L2-resident together with the output rows in flight.
const distTilePts = 192

func PairwiseDist2Workers(x [][]float64, workers int) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, n*n)
	parallel.For(workers, n, func(lo, hi int) {
		for jlo := lo + 1; jlo < n; jlo += distTilePts {
			jhi := jlo + distTilePts
			if jhi > n {
				jhi = n
			}
			for i := lo; i < hi; i++ {
				jstart := i + 1
				if jstart < jlo {
					jstart = jlo
				}
				if jstart >= jhi {
					continue
				}
				xi := x[i]
				row := out[i*n : (i+1)*n]
				j := jstart
				var oct [8]float64
				var octRows [8][]float64
				for ; j+8 <= jhi; j += 8 {
					copy(octRows[:], x[j:j+8])
					dist2x8(xi, &octRows, &oct)
					copy(row[j:j+8], oct[:])
				}
				if j+4 <= jhi {
					var quad [4]float64
					dist2x4(xi, x[j], x[j+1], x[j+2], x[j+3], &quad)
					row[j], row[j+1], row[j+2], row[j+3] = quad[0], quad[1], quad[2], quad[3]
					j += 4
				}
				for ; j < jhi; j++ {
					row[j] = dist2(xi, x[j])
				}
			}
			// Mirror the freshly computed block to the lower triangle while
			// it is still cache-resident. The writes land below the diagonal
			// of rows j in the tile, disjoint from every upper-triangle write
			// (row j's own worker only touches columns > j), so blocks stay
			// independent across workers.
			for j := jlo; j < jhi; j++ {
				imax := j
				if imax > hi {
					imax = hi
				}
				rowj := out[j*n : (j+1)*n]
				for i := lo; i < imax; i++ {
					rowj[i] = out[i*n+j]
				}
			}
		}
	})
	return out, nil
}
