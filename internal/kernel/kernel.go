// Package kernel provides the similarity kernels and bandwidth rules used to
// build the graphs in the reproduction.
//
// Theorem II.1 of the paper requires a kernel K that is (i) bounded,
// (ii) compactly supported, and (iii) bounded below by β > 0 on a ball
// around the origin. The Uniform, Epanechnikov, Triangular, and Tricube
// kernels satisfy all three; the Gaussian RBF kernel (used in the paper's
// experiments) violates (ii) but is included because the paper's own
// numerical studies use it on truncated inputs.
package kernel

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

var (
	// ErrBandwidth is returned for non-positive bandwidths.
	ErrBandwidth = errors.New("kernel: bandwidth must be positive")
	// ErrEmpty is returned when an input sample is empty.
	ErrEmpty = errors.New("kernel: empty input")
	// ErrUnknown is returned by Parse for unrecognized kernel names.
	ErrUnknown = errors.New("kernel: unknown kernel name")
)

// Kind enumerates the built-in kernel profiles.
type Kind int

// Supported kernel kinds.
const (
	Gaussian Kind = iota + 1
	Uniform
	Epanechnikov
	Triangular
	Tricube
)

// String returns the lowercase kernel name.
func (k Kind) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Uniform:
		return "uniform"
	case Epanechnikov:
		return "epanechnikov"
	case Triangular:
		return "triangular"
	case Tricube:
		return "tricube"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parse maps a kernel name to its Kind.
func Parse(name string) (Kind, error) {
	switch name {
	case "gaussian", "rbf":
		return Gaussian, nil
	case "uniform", "boxcar":
		return Uniform, nil
	case "epanechnikov":
		return Epanechnikov, nil
	case "triangular":
		return Triangular, nil
	case "tricube":
		return Tricube, nil
	default:
		return 0, fmt.Errorf("kernel: %q: %w", name, ErrUnknown)
	}
}

// CompactSupport reports whether the kernel profile has compact support
// (condition (ii) of Theorem II.1).
func (k Kind) CompactSupport() bool { return k != Gaussian }

// Profile evaluates the kernel profile at the scaled distance u = ‖x−y‖/h.
// Profiles are normalized so Profile(0) = 1, matching the paper's similarity
// convention 0 ≤ w_ij ≤ 1.
func (k Kind) Profile(u float64) float64 {
	u = math.Abs(u)
	switch k {
	case Gaussian:
		return math.Exp(-u * u)
	case Uniform:
		if u <= 1 {
			return 1
		}
		return 0
	case Epanechnikov:
		if u <= 1 {
			return 1 - u*u
		}
		return 0
	case Triangular:
		if u <= 1 {
			return 1 - u
		}
		return 0
	case Tricube:
		if u <= 1 {
			c := 1 - u*u*u
			return c * c * c
		}
		return 0
	default:
		return 0
	}
}

// K is a similarity kernel with bandwidth h: w(x, y) = Profile(‖x−y‖/h).
type K struct {
	kind Kind
	h    float64
}

// New returns a kernel of the given kind and bandwidth h > 0.
func New(kind Kind, h float64) (*K, error) {
	if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		return nil, fmt.Errorf("kernel: h=%v: %w", h, ErrBandwidth)
	}
	return &K{kind: kind, h: h}, nil
}

// MustNew is New for package-internal constants; it panics on invalid input.
func MustNew(kind Kind, h float64) *K {
	k, err := New(kind, h)
	if err != nil {
		panic(err)
	}
	return k
}

// Kind returns the kernel profile kind.
func (k *K) Kind() Kind { return k.kind }

// Bandwidth returns h.
func (k *K) Bandwidth() float64 { return k.h }

// Weight returns the similarity of x and y.
func (k *K) Weight(x, y []float64) float64 {
	return k.WeightDist2(dist2(x, y))
}

// WeightDist2 returns the similarity for a precomputed squared distance.
// Precomputing distances lets graph builders avoid re-deriving them per λ.
func (k *K) WeightDist2(d2 float64) float64 {
	if k.kind == Gaussian {
		// exp(-d²/h²) without the sqrt round-trip.
		return math.Exp(-d2 / (k.h * k.h))
	}
	return k.kind.Profile(math.Sqrt(d2) / k.h)
}

func dist2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(errors.New("kernel: dimension mismatch"))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// PaperBandwidth returns the bandwidth h_n = (log n / n)^{1/p} used in the
// paper's synthetic studies (p = input dimension = 5 there). It requires
// n >= 2 so that log n > 0.
func PaperBandwidth(n, p int) (float64, error) {
	if n < 2 || p < 1 {
		return 0, fmt.Errorf("kernel: PaperBandwidth(n=%d, p=%d): %w", n, p, ErrEmpty)
	}
	return math.Pow(math.Log(float64(n))/float64(n), 1/float64(p)), nil
}

// MedianHeuristic returns sqrt(median of squared pairwise distances), the σ
// used for the paper's COIL experiment (there σ² = median squared distance).
// With maxPairs > 0 the median is computed over a deterministic subsample of
// pairs to bound cost on large inputs.
func MedianHeuristic(x [][]float64, maxPairs int) (float64, error) {
	n := len(x)
	if n < 2 {
		return 0, ErrEmpty
	}
	total := n * (n - 1) / 2
	var d2s []float64
	if maxPairs > 0 && total > maxPairs {
		// Deterministic stride subsample over the flattened pair index.
		stride := total / maxPairs
		if stride < 1 {
			stride = 1
		}
		d2s = make([]float64, 0, maxPairs+1)
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if idx%stride == 0 {
					d2s = append(d2s, dist2(x[i], x[j]))
				}
				idx++
			}
		}
	} else {
		d2s = make([]float64, 0, total)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d2s = append(d2s, dist2(x[i], x[j]))
			}
		}
	}
	sort.Float64s(d2s)
	med := median(d2s)
	if med <= 0 {
		// All points identical: fall back to 1 so w ≡ Profile(0) = 1,
		// matching the paper's Section III toy construction.
		return 1, nil
	}
	return math.Sqrt(med), nil
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 1.06 σ̂ n^{-1/5} for a single coordinate sample, a standard reference rule
// for kernel regression baselines.
func SilvermanBandwidth(sample []float64) (float64, error) {
	n := len(sample)
	if n < 2 {
		return 0, ErrEmpty
	}
	var mean float64
	for _, v := range sample {
		mean += v
	}
	mean /= float64(n)
	var ss float64
	for _, v := range sample {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	if sd == 0 {
		return 0, fmt.Errorf("kernel: zero variance sample: %w", ErrBandwidth)
	}
	return 1.06 * sd * math.Pow(float64(n), -0.2), nil
}

// PairwiseDist2 returns the full matrix of squared Euclidean distances as a
// flat row-major slice of length n*n. Shared by graph builders so the O(n²d)
// distance pass happens once per dataset rather than once per λ value.
func PairwiseDist2(x [][]float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist2(x[i], x[j])
			out[i*n+j] = d
			out[j*n+i] = d
		}
	}
	return out, nil
}
