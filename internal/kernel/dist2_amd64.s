//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dist2x4Lanes(x, y0, y1, y2, y3 *float64, nq int, out *[16]float64)
//
// Four rows against one query in a single pass: the x load is shared and
// the four accumulator chains (Y0..Y3) interleave, hiding VADDPD latency.
// Lane l of each accumulator holds the partial sum over dimensions
// i ≡ l (mod 4) — the same convention as the scalar dist2Lanes — and the
// final reduction happens in Go, so the result is bitwise-identical to the
// scalar path. VSUBPD/VMULPD/VADDPD are used instead of FMA: fused
// multiply-add rounds once, which would diverge from scalar results.
TEXT ·dist2x4Lanes(SB), NOSPLIT, $0-56
	MOVQ x+0(FP), SI
	MOVQ y0+8(FP), R8
	MOVQ y1+16(FP), R9
	MOVQ y2+24(FP), R10
	MOVQ y3+32(FP), R11
	MOVQ nq+40(FP), CX
	MOVQ out+48(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX

loop:
	CMPQ AX, CX
	JGE  done
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD (R8)(AX*8), Y5
	VSUBPD  Y5, Y4, Y5
	VMULPD  Y5, Y5, Y5
	VADDPD  Y5, Y0, Y0
	VMOVUPD (R9)(AX*8), Y6
	VSUBPD  Y6, Y4, Y6
	VMULPD  Y6, Y6, Y6
	VADDPD  Y6, Y1, Y1
	VMOVUPD (R10)(AX*8), Y7
	VSUBPD  Y7, Y4, Y7
	VMULPD  Y7, Y7, Y7
	VADDPD  Y7, Y2, Y2
	VMOVUPD (R11)(AX*8), Y8
	VSUBPD  Y8, Y4, Y8
	VMULPD  Y8, Y8, Y8
	VADDPD  Y8, Y3, Y3
	ADDQ    $4, AX
	JMP     loop

done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func dist2Row8(x, y0, y1, y2, y3, y4, y5, y6, y7 *float64, d int, out *float64)
//
// Full eight-row distance kernel: the vector body of dist2x4Lanes widened to
// eight rows, plus the scalar tail dimensions and the (s0+s1)+(s2+s3) lane
// reduction, all in the exact operation order of the scalar dist2, writing
// the eight finished squared distances to out. Doing the epilogue here saves
// the per-call round-trip of 32 partial sums through memory on the hot path.
TEXT ·dist2Row8(SB), NOSPLIT, $0-88
	MOVQ x+0(FP), SI
	MOVQ y0+8(FP), R8
	MOVQ y1+16(FP), R9
	MOVQ y2+24(FP), R10
	MOVQ y3+32(FP), R11
	MOVQ y4+40(FP), R12
	MOVQ y5+48(FP), R13
	MOVQ y6+56(FP), R14
	MOVQ y7+64(FP), R15
	MOVQ d+72(FP), BX
	MOVQ out+80(FP), DI
	MOVQ BX, CX
	ANDQ $-4, CX          // nq = d &^ 3
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX

rowloop:
	CMPQ AX, CX
	JGE  rowtails
	VMOVUPD (SI)(AX*8), Y8
	VMOVUPD (R8)(AX*8), Y9
	VSUBPD  Y9, Y8, Y9
	VMULPD  Y9, Y9, Y9
	VADDPD  Y9, Y0, Y0
	VMOVUPD (R9)(AX*8), Y10
	VSUBPD  Y10, Y8, Y10
	VMULPD  Y10, Y10, Y10
	VADDPD  Y10, Y1, Y1
	VMOVUPD (R10)(AX*8), Y11
	VSUBPD  Y11, Y8, Y11
	VMULPD  Y11, Y11, Y11
	VADDPD  Y11, Y2, Y2
	VMOVUPD (R11)(AX*8), Y12
	VSUBPD  Y12, Y8, Y12
	VMULPD  Y12, Y12, Y12
	VADDPD  Y12, Y3, Y3
	VMOVUPD (R12)(AX*8), Y13
	VSUBPD  Y13, Y8, Y13
	VMULPD  Y13, Y13, Y13
	VADDPD  Y13, Y4, Y4
	VMOVUPD (R13)(AX*8), Y14
	VSUBPD  Y14, Y8, Y14
	VMULPD  Y14, Y14, Y14
	VADDPD  Y14, Y5, Y5
	VMOVUPD (R14)(AX*8), Y15
	VSUBPD  Y15, Y8, Y15
	VMULPD  Y15, Y15, Y15
	VADDPD  Y15, Y6, Y6
	VMOVUPD (R15)(AX*8), Y9
	VSUBPD  Y9, Y8, Y9
	VMULPD  Y9, Y9, Y9
	VADDPD  Y9, Y7, Y7
	ADDQ    $4, AX
	JMP     rowloop

// Per row: save the high lanes [s2,s3] before the scalar tail clobbers the
// ymm upper half (VADDSD zeroes bits 128..255), run the tail into lane s0,
// then reduce exactly as (s0+s1)+(s2+s3).
rowtails:
	VEXTRACTF128 $1, Y0, X8
	MOVQ CX, DX
tail0:
	CMPQ DX, BX
	JGE  reduce0
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R8)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X0, X0
	INCQ DX
	JMP  tail0
reduce0:
	VUNPCKHPD X0, X0, X9
	VADDSD X9, X0, X0
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X0, X0
	VMOVSD X0, (DI)

	VEXTRACTF128 $1, Y1, X8
	MOVQ CX, DX
tail1:
	CMPQ DX, BX
	JGE  reduce1
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R9)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X1, X1
	INCQ DX
	JMP  tail1
reduce1:
	VUNPCKHPD X1, X1, X9
	VADDSD X9, X1, X1
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X1, X1
	VMOVSD X1, 8(DI)

	VEXTRACTF128 $1, Y2, X8
	MOVQ CX, DX
tail2:
	CMPQ DX, BX
	JGE  reduce2
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R10)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X2, X2
	INCQ DX
	JMP  tail2
reduce2:
	VUNPCKHPD X2, X2, X9
	VADDSD X9, X2, X2
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X2, X2
	VMOVSD X2, 16(DI)

	VEXTRACTF128 $1, Y3, X8
	MOVQ CX, DX
tail3:
	CMPQ DX, BX
	JGE  reduce3
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R11)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X3, X3
	INCQ DX
	JMP  tail3
reduce3:
	VUNPCKHPD X3, X3, X9
	VADDSD X9, X3, X3
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X3, X3
	VMOVSD X3, 24(DI)

	VEXTRACTF128 $1, Y4, X8
	MOVQ CX, DX
tail4:
	CMPQ DX, BX
	JGE  reduce4
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R12)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X4, X4
	INCQ DX
	JMP  tail4
reduce4:
	VUNPCKHPD X4, X4, X9
	VADDSD X9, X4, X4
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X4, X4
	VMOVSD X4, 32(DI)

	VEXTRACTF128 $1, Y5, X8
	MOVQ CX, DX
tail5:
	CMPQ DX, BX
	JGE  reduce5
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R13)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X5, X5
	INCQ DX
	JMP  tail5
reduce5:
	VUNPCKHPD X5, X5, X9
	VADDSD X9, X5, X5
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X5, X5
	VMOVSD X5, 40(DI)

	VEXTRACTF128 $1, Y6, X8
	MOVQ CX, DX
tail6:
	CMPQ DX, BX
	JGE  reduce6
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R14)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X6, X6
	INCQ DX
	JMP  tail6
reduce6:
	VUNPCKHPD X6, X6, X9
	VADDSD X9, X6, X6
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X6, X6
	VMOVSD X6, 48(DI)

	VEXTRACTF128 $1, Y7, X8
	MOVQ CX, DX
tail7:
	CMPQ DX, BX
	JGE  reduce7
	VMOVSD (SI)(DX*8), X9
	VSUBSD (R15)(DX*8), X9, X9
	VMULSD X9, X9, X9
	VADDSD X9, X7, X7
	INCQ DX
	JMP  tail7
reduce7:
	VUNPCKHPD X7, X7, X9
	VADDSD X9, X7, X7
	VUNPCKHPD X8, X8, X9
	VADDSD X9, X8, X8
	VADDSD X8, X7, X7
	VMOVSD X7, 56(DI)

	VZEROUPPER
	RET
