//go:build amd64

package kernel

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// TestDist2RowsBackends pins the scalar-fallback contract the serving hot
// path relies on: Dist2Rows (the multi-row AVX kernel) and the pure-Go
// four-lane path produce bitwise-identical squared distances for every row
// count and dimension, including the ragged tails that exercise the
// 8-row, 4-row, and scalar remainders. On hosts without AVX both runs take
// the scalar path and the test degenerates to a self-comparison, which is
// exactly the contract (there is only one backend there).
func TestDist2RowsBackends(t *testing.T) {
	avx := useAVX
	defer func() { useAVX = avx }()

	rng := randx.New(613)
	for _, d := range []int{1, 3, 4, 5, 8, 11, 16, 33, 64} {
		for _, rowsN := range []int{1, 4, 7, 8, 9, 16, 23} {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Norm()
			}
			rows := make([][]float64, rowsN)
			for i := range rows {
				rows[i] = make([]float64, d)
				for j := range rows[i] {
					v := rng.Norm()
					if rng.Float64() < 0.25 {
						v = math.Round(v) // exact ties and zero differences
					}
					rows[i][j] = v
				}
			}

			useAVX = avx
			vec := make([]float64, rowsN)
			Dist2Rows(q, rows, vec)

			useAVX = false
			scalar := make([]float64, rowsN)
			Dist2Rows(q, rows, scalar)

			for i := range rows {
				if math.Float64bits(vec[i]) != math.Float64bits(scalar[i]) {
					t.Fatalf("d=%d rows=%d row %d: avx %v != scalar %v", d, rowsN, i, vec[i], scalar[i])
				}
				if want := Dist2(q, rows[i]); math.Float64bits(vec[i]) != math.Float64bits(want) {
					t.Fatalf("d=%d rows=%d row %d: Dist2Rows %v != Dist2 %v", d, rowsN, i, vec[i], want)
				}
			}
		}
	}
}
