package sparse

import "sort"

// This file implements reverse Cuthill–McKee (RCM) bandwidth-reducing
// reordering and the symmetric permutation machinery the preconditioned
// solve path wraps around it. Everything here is deterministic: BFS
// frontiers expand in (degree, index) order, tie-breaks are by node index,
// and component roots are minimum-degree (then minimum-index), so one
// matrix always yields one permutation.

// RCM computes a reverse Cuthill–McKee ordering of a square matrix's
// adjacency structure, returning perm with perm[new] = old. Applying it
// symmetrically (Permute) clusters each row's neighbours near the diagonal,
// which shrinks the profile an IC(0) factor works over and improves SpMV
// cache locality. Disconnected graphs are handled per component; diagonal
// entries are ignored as self-loops.
func RCM(a *CSR) ([]int, error) {
	n := a.rows
	if a.cols != n {
		return nil, ErrShape
	}
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		cols, _ := a.RowNNZ(i)
		d := 0
		for _, j := range cols {
			if j != i {
				d++
			}
		}
		deg[i] = d
	}

	// scratch queue for BFS layering.
	queue := make([]int, 0, n)
	frontier := make([]int, 0, 16)

	// bfs runs a Cuthill–McKee breadth-first sweep from root, appending
	// visited nodes to perm in (layer, degree, index) order, and returns the
	// nodes appended (as a sub-slice of perm) plus the last layer reached.
	bfs := func(root int) (int, int) {
		start := len(perm)
		visited[root] = true
		perm = append(perm, root)
		depth := 0
		for lo := start; lo < len(perm); {
			hi := len(perm)
			for _, u := range perm[lo:hi] {
				frontier = frontier[:0]
				cols, _ := a.RowNNZ(u)
				for _, v := range cols {
					if v != u && !visited[v] {
						visited[v] = true
						frontier = append(frontier, v)
					}
				}
				// Ascending (degree, index): CSR rows are index-sorted, so a
				// stable sort by degree yields the deterministic total order.
				sort.SliceStable(frontier, func(x, y int) bool {
					return deg[frontier[x]] < deg[frontier[y]]
				})
				perm = append(perm, frontier...)
			}
			if len(perm) > hi {
				depth++
			}
			lo = hi
		}
		return start, depth
	}

	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		// Component root: minimum degree, then minimum index — a cheap
		// deterministic stand-in for a pseudo-peripheral vertex. One
		// George–Liu refinement pass: BFS, restart from a min-degree node of
		// the deepest layer if that increases eccentricity.
		compRoot := root
		queue = queue[:0]
		queue = append(queue, root)
		visited[root] = true
		for qi := 0; qi < len(queue); qi++ {
			cols, _ := a.RowNNZ(queue[qi])
			for _, v := range cols {
				if v != queue[qi] && !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		for _, v := range queue {
			visited[v] = false
			if deg[v] < deg[compRoot] || (deg[v] == deg[compRoot] && v < compRoot) {
				compRoot = v
			}
		}

		start, depth := bfs(compRoot)
		// Refinement: try the min-degree node of the last BFS layer; keep the
		// deeper of the two orderings (deterministic: strict improvement).
		last := lastLayerMinDegree(a, deg, perm[start:], compRoot)
		if last != compRoot {
			for _, v := range perm[start:] {
				visited[v] = false
			}
			perm = perm[:start]
			_, depth2 := bfs(last)
			if depth2 < depth {
				for _, v := range perm[start:] {
					visited[v] = false
				}
				perm = perm[:start]
				bfs(compRoot)
			}
		}
		// Reverse the component's Cuthill–McKee order in place.
		for i, j := start, len(perm)-1; i < j; i, j = i+1, j-1 {
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm, nil
}

// lastLayerMinDegree returns the minimum-degree (then minimum-index) node of
// the final BFS layer from root over the component nodes comp.
func lastLayerMinDegree(a *CSR, deg []int, comp []int, root int) int {
	level := make(map[int]int, len(comp))
	level[root] = 0
	queue := []int{root}
	maxLevel := 0
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		cols, _ := a.RowNNZ(u)
		for _, v := range cols {
			if v == u {
				continue
			}
			if _, ok := level[v]; !ok {
				level[v] = level[u] + 1
				if level[v] > maxLevel {
					maxLevel = level[v]
				}
				queue = append(queue, v)
			}
		}
	}
	best := root
	for _, v := range queue {
		if level[v] != maxLevel {
			continue
		}
		if best == root || deg[v] < deg[best] || (deg[v] == deg[best] && v < best) {
			best = v
		}
	}
	return best
}

// InvertPerm returns the inverse permutation: inv[perm[i]] = i.
func InvertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// validPerm reports whether perm is a permutation of [0, n).
func validPerm(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Permute returns the symmetric permutation B = P A Pᵀ with
// B[i][j] = A[perm[i]][perm[j]]. perm must be a permutation of [0, rows);
// the matrix must be square.
func (m *CSR) Permute(perm []int) (*CSR, error) {
	b, _, err := m.PermuteMap(perm)
	return b, err
}

// PermuteMap is Permute returning additionally posMap, which maps each
// stored-entry position of the permuted matrix back onto the position of
// the same entry in the receiver's data array. Sweeps over a fixed sparsity
// pattern use it to refill a permuted matrix's values in place
// (permuted.data[k] = original.data[posMap[k]]) without re-permuting the
// structure.
func (m *CSR) PermuteMap(perm []int) (*CSR, []int, error) {
	n := m.rows
	if m.cols != n {
		return nil, nil, ErrShape
	}
	if !validPerm(perm, n) {
		return nil, nil, ErrIndex
	}
	inv := InvertPerm(perm)
	nnz := m.NNZ()
	indptr := make([]int, n+1)
	indices := make([]int, nnz)
	data := make([]float64, nnz)
	posMap := make([]int, nnz)
	type ent struct {
		col, pos int
	}
	var row []ent
	at := 0
	for i := 0; i < n; i++ {
		old := perm[i]
		lo, hi := m.indptr[old], m.indptr[old+1]
		row = row[:0]
		for k := lo; k < hi; k++ {
			row = append(row, ent{col: inv[m.indices[k]], pos: k})
		}
		sort.Slice(row, func(x, y int) bool { return row[x].col < row[y].col })
		for _, e := range row {
			indices[at] = e.col
			data[at] = m.data[e.pos]
			posMap[at] = e.pos
			at++
		}
		indptr[i+1] = at
	}
	out := &CSR{rows: n, cols: n, indptr: indptr, indices: indices, data: data}
	return out, posMap, nil
}

// RefillPermuted overwrites the receiver's values with src.data[posMap[k]]
// for every stored position k, where posMap came from src.PermuteMap. It is
// the numeric half of a permuted sweep: structure stays fixed, values track
// the source matrix. The receiver must be the matrix PermuteMap returned
// (same nnz).
func (m *CSR) RefillPermuted(src *CSR, posMap []int) error {
	if len(posMap) != len(m.data) || len(src.data) != len(m.data) {
		return ErrShape
	}
	for k, p := range posMap {
		m.data[k] = src.data[p]
	}
	return nil
}

// Bandwidth returns the matrix bandwidth max_i,j |i−j| over stored entries
// (0 for diagonal or empty matrices).
func (m *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < m.rows; i++ {
		lo, hi := m.indptr[i], m.indptr[i+1]
		for k := lo; k < hi; k++ {
			d := m.indices[k] - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// PermuteVecTo writes dst[i] = src[perm[i]] — the vector counterpart of
// Permute (dst = P src). dst must not alias src.
func PermuteVecTo(dst, src []float64, perm []int) {
	for i, p := range perm {
		dst[i] = src[p]
	}
}

// UnpermuteVecTo writes dst[perm[i]] = src[i] — the inverse of
// PermuteVecTo (dst = Pᵀ src). dst must not alias src.
func UnpermuteVecTo(dst, src []float64, perm []int) {
	for i, p := range perm {
		dst[p] = src[i]
	}
}
