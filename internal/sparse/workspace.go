package sparse

import (
	"math/bits"
	"sync"
)

// Workspace is a reusable bundle of solver scratch vectors. The iterative
// solvers (CG/PCG, Jacobi, Gauss–Seidel) draw their residual, direction,
// and sweep buffers from one, so a caller that holds a Workspace across
// repeated solves — a λ sweep, a multi-RHS loop — does zero steady-state
// heap allocation: every buffer is grown once to the largest size seen and
// then reused.
//
// A Workspace is not goroutine-safe; concurrent solves need one each.
// Buffer contents are undefined between solves — solvers fully overwrite
// every vector they take, so reuse never changes results bitwise.
type Workspace struct {
	bufs   [][]float64
	bucket int // pool bucket this workspace was drawn from; -1 when fresh
}

// NewWorkspace returns a fresh, unpooled workspace. Use it when measuring
// allocation behaviour without pool effects, or when the workspace outlives
// any sensible pool epoch; GetWorkspace is the cheaper default.
func NewWorkspace() *Workspace {
	return &Workspace{bucket: -1}
}

// vec returns the k-th scratch vector resized to length n, growing storage
// only when n exceeds the largest length previously requested for slot k.
func (w *Workspace) vec(k, n int) []float64 {
	for len(w.bufs) <= k {
		w.bufs = append(w.bufs, nil)
	}
	if cap(w.bufs[k]) < n {
		w.bufs[k] = make([]float64, n)
	}
	return w.bufs[k][:n]
}

// wsPools buckets pooled workspaces by the power-of-two size class of the
// system they last served, so a transient huge solve does not pin
// multi-megabyte buffers onto the workspace every small solve draws.
var wsPools [64]sync.Pool

// sizeBucket maps a system size onto its pool index.
func sizeBucket(n int) int {
	if n < 1 {
		n = 1
	}
	return bits.Len(uint(n))
}

// GetWorkspace draws a pooled workspace suitable for systems of about n
// unknowns. Callers must Release it when the solve (or solve sequence)
// finishes. Solvers call this internally when no Workspace is supplied, so
// one-shot solves stay allocation-light without any caller involvement.
func GetWorkspace(n int) *Workspace {
	b := sizeBucket(n)
	if ws, ok := wsPools[b].Get().(*Workspace); ok {
		ws.bucket = b
		return ws
	}
	return &Workspace{bucket: b}
}

// Release returns the workspace to its size-class pool. The workspace must
// not be used afterwards; buffers handed out by vec are invalidated.
func (w *Workspace) Release() {
	if w == nil {
		return
	}
	max := 0
	for _, b := range w.bufs {
		if cap(b) > max {
			max = cap(b)
		}
	}
	b := sizeBucket(max)
	w.bucket = b
	wsPools[b].Put(w)
}
