package sparse

import (
	"math"

	"repro/internal/mat"
)

// LanczosResult holds the Ritz values of a symmetric matrix computed by the
// Lanczos iteration.
type LanczosResult struct {
	// RitzValues are the eigenvalues of the tridiagonal projection,
	// ascending. The extremes converge to the matrix's extreme eigenvalues.
	RitzValues []float64
	// Steps is the number of Lanczos steps actually performed (the
	// iteration stops early on invariant subspaces).
	Steps int
}

// Lanczos runs k steps of the symmetric Lanczos iteration with full
// reorthogonalization, starting from v0 (nil for a deterministic default),
// optionally projecting every iterate against the unit vectors in deflate
// (each must have unit norm). It returns the Ritz values of the projected
// tridiagonal matrix.
//
// Full reorthogonalization costs O(k²n) but keeps the Ritz values accurate
// without the classical ghost-eigenvalue pathology; intended for the small
// k (extremal eigenvalue) use cases in this repository.
func Lanczos(a *CSR, k int, v0 []float64, deflate [][]float64) (*LanczosResult, error) {
	n := a.rows
	if a.cols != n {
		return nil, ErrShape
	}
	if n == 0 || k < 1 {
		return nil, ErrShape
	}
	if k > n {
		k = n
	}
	for _, d := range deflate {
		if len(d) != n {
			return nil, ErrShape
		}
	}

	project := func(v []float64) {
		for _, d := range deflate {
			c := mat.Dot(v, d)
			if c != 0 {
				mat.AXPY(-c, d, v)
			}
		}
	}

	v := make([]float64, n)
	if v0 != nil {
		if len(v0) != n {
			return nil, ErrShape
		}
		copy(v, v0)
	} else {
		// Deterministic start with varied signs to avoid symmetry traps.
		for i := range v {
			v[i] = 1 + 0.5*math.Sin(float64(3*i+1))
		}
	}
	project(v)
	nrm := mat.Norm2(v)
	if nrm == 0 {
		return nil, ErrShape
	}
	mat.ScaleVec(1/nrm, v)

	basis := make([][]float64, 0, k)
	alphas := make([]float64, 0, k)
	betas := make([]float64, 0, k) // beta[i] links step i and i+1
	w := make([]float64, n)
	for step := 0; step < k; step++ {
		basis = append(basis, mat.CloneVec(v))
		if err := a.MulVecTo(w, v); err != nil {
			return nil, err
		}
		project(w)
		alpha := mat.Dot(w, v)
		alphas = append(alphas, alpha)
		// w ← w − αv − βv_prev, then full reorthogonalization.
		mat.AXPY(-alpha, v, w)
		if step > 0 {
			mat.AXPY(-betas[step-1], basis[step-1], w)
		}
		for _, b := range basis {
			c := mat.Dot(w, b)
			if c != 0 {
				mat.AXPY(-c, b, w)
			}
		}
		beta := mat.Norm2(w)
		if beta < 1e-13*math.Max(1, math.Abs(alpha)) {
			// Invariant subspace found: the Ritz values are exact.
			break
		}
		betas = append(betas, beta)
		for i := range v {
			v[i] = w[i] / beta
		}
	}

	steps := len(alphas)
	t := mat.NewDense(steps, steps)
	for i := 0; i < steps; i++ {
		t.Set(i, i, alphas[i])
		if i+1 < steps && i < len(betas) {
			t.Set(i, i+1, betas[i])
			t.Set(i+1, i, betas[i])
		}
	}
	eig, err := mat.NewEigenSym(t, 0)
	if err != nil {
		return nil, err
	}
	return &LanczosResult{RitzValues: eig.Values, Steps: steps}, nil
}

// ExtremalEigsSym estimates the smallest and largest eigenvalues of a
// symmetric CSR matrix by a k-step Lanczos iteration (k defaults to
// min(n, 50)).
func ExtremalEigsSym(a *CSR, k int) (smallest, largest float64, err error) {
	if k <= 0 {
		k = 50
	}
	res, err := Lanczos(a, k, nil, nil)
	if err != nil {
		return 0, 0, err
	}
	rv := res.RitzValues
	return rv[0], rv[len(rv)-1], nil
}
