package sparse

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
)

// randomCSR builds a random sparse matrix with roughly density nnz/cell.
func randomCSR(seed int64, rows, cols int, density float64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				_ = coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestMulVecToWorkersMatchesSerial(t *testing.T) {
	m := randomCSR(3, 400, 300, 0.05)
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, 400)
	if err := m.MulVecTo(ref, x); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, runtime.GOMAXPROCS(0)} {
		dst := make([]float64, 400)
		if err := m.MulVecToWorkers(dst, x, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if dst[i] != ref[i] {
				t.Fatalf("workers=%d: row %d = %v, want %v (must be bitwise-identical)", workers, i, dst[i], ref[i])
			}
		}
	}
	if err := m.MulVecToWorkers(make([]float64, 1), x, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst: err = %v, want ErrShape", err)
	}
}

// TestMulVecThresholdBitwiseIdentical covers both sides of the serial
// fallback threshold: the 400-row matrix above runs inline for every worker
// count, so this one is sized past mulVecMinParRows to keep the parallel
// row-split on the tested path.
func TestMulVecThresholdBitwiseIdentical(t *testing.T) {
	const n = mulVecMinParRows + 512
	rng := rand.New(rand.NewSource(11))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		_ = coo.Add(i, i, 1+rng.Float64())
		for _, j := range []int{(i + 7) % n, (i + n/2) % n} {
			if j != i {
				_ = coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	m := coo.ToCSR()
	if m.Rows() < mulVecMinParRows {
		t.Fatalf("matrix below parallel threshold: %d rows", m.Rows())
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, n)
	if err := m.MulVecTo(ref, x); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, runtime.GOMAXPROCS(0)} {
		dst := make([]float64, n)
		if err := m.MulVecToWorkers(dst, x, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if dst[i] != ref[i] {
				t.Fatalf("workers=%d: row %d = %v, want %v (must be bitwise-identical)", workers, i, dst[i], ref[i])
			}
		}
	}
}

func TestNewCSRValidation(t *testing.T) {
	// A valid 2x3 matrix: rows {0:1.0 at col 1}, {1: entries at 0 and 2}.
	indptr := []int{0, 1, 3}
	indices := []int{1, 0, 2}
	data := []float64{1, 2, 3}
	m, err := NewCSR(2, 3, indptr, indices, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 2 || m.At(1, 2) != 3 || m.At(0, 0) != 0 {
		t.Fatal("NewCSR entries misplaced")
	}

	bad := []struct {
		name    string
		rows    int
		cols    int
		indptr  []int
		indices []int
		data    []float64
	}{
		{"indptr-length", 2, 3, []int{0, 1}, []int{1}, []float64{1}},
		{"indptr-start", 2, 3, []int{1, 1, 3}, []int{1, 0, 2}, []float64{1, 2, 3}},
		{"nnz-mismatch", 2, 3, []int{0, 1, 3}, []int{1, 0}, []float64{1, 2, 3}},
		{"unsorted-row", 2, 3, []int{0, 1, 3}, []int{1, 2, 0}, []float64{1, 2, 3}},
		{"duplicate-col", 2, 3, []int{0, 2, 3}, []int{1, 1, 0}, []float64{1, 2, 3}},
		{"col-range", 2, 3, []int{0, 1, 3}, []int{1, 0, 3}, []float64{1, 2, 3}},
	}
	for _, tc := range bad {
		if _, err := NewCSR(tc.rows, tc.cols, tc.indptr, tc.indices, tc.data); err == nil {
			t.Errorf("%s: NewCSR accepted invalid input", tc.name)
		}
	}
}

func TestCGWorkersBitwiseIdentical(t *testing.T) {
	// SPD system: A = Mᵀ M + I built densely via COO.
	const n = 150
	rng := rand.New(rand.NewSource(9))
	coo := NewCOO(n, n)
	base := make([][]float64, n)
	for i := range base {
		base[i] = make([]float64, n)
		for j := range base[i] {
			base[i][j] = rng.NormFloat64() / float64(n)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += base[k][i] * base[k][j]
			}
			if i == j {
				s += 1
			}
			_ = coo.Add(i, j, s)
		}
	}
	a := coo.ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref, refRes, err := CG(a, b, CGOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		x, res, err := CG(a, b, CGOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Iterations != refRes.Iterations {
			t.Fatalf("workers=%d: %d iterations, want %d", workers, res.Iterations, refRes.Iterations)
		}
		for i := range ref {
			if x[i] != ref[i] {
				t.Fatalf("workers=%d: x[%d] = %v, want %v (must be bitwise-identical)", workers, i, x[i], ref[i])
			}
		}
	}
}

func TestJacobiWorkersBitwiseIdentical(t *testing.T) {
	// Strictly diagonally dominant system.
	const n = 200
	rng := rand.New(rand.NewSource(17))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if rng.Float64() < 0.05 {
				v := rng.NormFloat64()
				off += absf(v)
				_ = coo.Add(i, j, v)
			}
		}
		_ = coo.Add(i, i, off+1+rng.Float64())
	}
	a := coo.ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref, refRes, err := JacobiWorkers(a, b, 1e-12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3} {
		x, res, err := JacobiWorkers(a, b, 1e-12, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Iterations != refRes.Iterations {
			t.Fatalf("workers=%d: %d iterations, want %d", workers, res.Iterations, refRes.Iterations)
		}
		for i := range ref {
			if x[i] != ref[i] {
				t.Fatalf("workers=%d: x[%d] differs (must be bitwise-identical)", workers, i)
			}
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
