package sparse

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// countdownCtx is a context whose Err flips to context.Canceled after its
// Err method has been consulted `fuse` times. It cancels a solver
// deterministically "mid-solve" without any timing dependence.
type countdownCtx struct {
	fuse int64
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.fuse, -1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestCGCanceledBeforeStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSPDCSR(rng, 40)
	b := randVec(rng, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, res, err := CG(a, b, CGOptions{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("ran %d iterations after cancellation", res.Iterations)
	}
}

func TestIterativeSolversCancelMidSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSPDCSR(rng, 60)
	b := randVec(rng, 60)

	cases := []struct {
		name  string
		solve func(ctx context.Context) (SolveResult, error)
	}{
		{"cg", func(ctx context.Context) (SolveResult, error) {
			_, r, err := CG(a, b, CGOptions{Ctx: ctx, Tol: 1e-14})
			return r, err
		}},
		{"jacobi", func(ctx context.Context) (SolveResult, error) {
			_, r, err := JacobiCtx(ctx, a, b, 1e-14, 100000, 1)
			return r, err
		}},
		{"gauss-seidel", func(ctx context.Context) (SolveResult, error) {
			_, r, err := GaussSeidelCtx(ctx, a, b, 1e-14, 100000, 1)
			return r, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The fuse admits a handful of per-iteration checks, then trips:
			// the solver must notice within the very next sweep.
			res, err := tc.solve(&countdownCtx{fuse: 3})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res.Iterations > 4 {
				t.Fatalf("solver ran %d iterations past a fuse of 3 checks", res.Iterations)
			}
		})
	}
}

func TestCGDivergenceDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSPDCSR(rng, 10)
	b := randVec(rng, 10)
	b[3] = math.NaN()
	_, _, err := CG(a, b, CGOptions{StagnationWindow: 5})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged on NaN rhs", err)
	}
}

// TestCGStagnationDetection feeds CG a singular PSD system whose rhs has a
// null-space component: the residual can never fall below that component's
// norm, so the history window must trip instead of spinning to MaxIter.
func TestCGStagnationDetection(t *testing.T) {
	// Edge Laplacian [[1,-1],[-1,1]] padded with well-behaved rows so pap
	// stays positive for the first search directions.
	coo := NewCOO(4, 4)
	_ = coo.AddSym(0, 1, -1)
	_ = coo.Add(0, 0, 1)
	_ = coo.Add(1, 1, 1)
	_ = coo.Add(2, 2, 2)
	_ = coo.Add(3, 3, 3)
	a := coo.ToCSR()
	// b = range component + null component ([1,1] direction is null).
	b := []float64{2, 0, 1, 1}
	_, res, err := CG(a, b, CGOptions{Tol: 1e-13, MaxIter: 10000, StagnationWindow: 10})
	if !errors.Is(err, ErrStagnated) && !errors.Is(err, ErrDiverged) && !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want a detection error", err)
	}
	if errors.Is(err, ErrStagnated) && res.Iterations >= 10000 {
		t.Fatalf("stagnation flagged only at MaxIter (%d iterations)", res.Iterations)
	}
	if res.Iterations >= 10000 {
		t.Fatalf("solver spun to MaxIter (%d) instead of detecting failure", res.Iterations)
	}
}

// TestCGStagnationDetectionPassiveOnHealthyRuns verifies detection never
// perturbs a converging solve: iterates with and without the window are
// bitwise identical.
func TestCGStagnationDetectionPassiveOnHealthyRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randSPDCSR(rng, 50)
	b := randVec(rng, 50)
	x1, r1, err1 := CG(a, b, CGOptions{})
	x2, r2, err2 := CG(a, b, CGOptions{StagnationWindow: 25})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v / %v", err1, err2)
	}
	if r1.Iterations != r2.Iterations || r1.Residual != r2.Residual {
		t.Fatalf("results differ: %+v vs %+v", r1, r2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("iterate differs at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestJacobiNilCtxUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randSPDCSR(rng, 30)
	b := randVec(rng, 30)
	x1, r1, err1 := Jacobi(a, b, 1e-10, 10000)
	x2, r2, err2 := JacobiCtx(context.Background(), a, b, 1e-10, 10000, 1)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v / %v", err1, err2)
	}
	if r1.Iterations != r2.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("iterate differs at %d", i)
		}
	}
}
