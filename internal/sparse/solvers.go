package sparse

import (
	"context"
	"errors"
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
)

var (
	// ErrStagnated is returned when stagnation detection is enabled and the
	// residual has not improved over the configured iteration window. It is
	// the signal the auto fallback chain escalates on instead of spinning to
	// MaxIter.
	ErrStagnated = errors.New("sparse: iteration stagnated")
	// ErrDiverged is returned when the residual grows far beyond its
	// starting value or becomes non-finite.
	ErrDiverged = errors.New("sparse: iteration diverged")
)

// SolveResult reports how an iterative solve ended.
type SolveResult struct {
	// Iterations is the number of iterations performed.
	Iterations int
	// Residual is the final relative residual ‖b−Ax‖₂ / ‖b‖₂
	// (absolute when b = 0).
	Residual float64
}

// CGOptions configures the conjugate gradient solver.
type CGOptions struct {
	// Tol is the relative residual target; default 1e-10.
	Tol float64
	// MaxIter caps iterations; default 10*n.
	MaxIter int
	// Precondition enables Jacobi (diagonal) preconditioning.
	Precondition bool
	// X0 is the starting guess; default the zero vector.
	X0 []float64
	// Workers parallelizes the matrix-vector products over row ranges:
	// <= 0 (the default) selects GOMAXPROCS, 1 forces the serial path.
	// Dot products and vector updates stay serial, so the iterates are
	// bitwise-identical across worker counts.
	Workers int
	// Ctx, when non-nil, is checked once per iteration; a done context
	// aborts the solve with ctx.Err() (context.Canceled or
	// context.DeadlineExceeded) within one iteration sweep.
	Ctx context.Context
	// StagnationWindow, when > 0, enables stagnation detection: if the
	// relative residual fails to improve below StagnationImprove × its best
	// value for StagnationWindow consecutive iterations, the solve aborts
	// with ErrStagnated. Detection only observes the residual history, so
	// the iterates of a converging run are unchanged.
	StagnationWindow int
	// StagnationImprove is the required relative improvement factor per
	// window (default 0.99: the residual must drop at least 1% per window).
	StagnationImprove float64
	// DivergeFactor aborts with ErrDiverged when the residual exceeds
	// DivergeFactor × max(1, initial residual) or turns NaN/Inf
	// (default 1e8; only active when StagnationWindow > 0).
	DivergeFactor float64
}

func (o *CGOptions) fill(n int) error {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	if o.X0 != nil && len(o.X0) != n {
		return ErrShape
	}
	if o.StagnationImprove <= 0 || o.StagnationImprove >= 1 {
		o.StagnationImprove = 0.99
	}
	if o.DivergeFactor <= 0 {
		o.DivergeFactor = 1e8
	}
	return nil
}

// ctxErr reports the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// CG solves A x = b for a symmetric positive definite CSR matrix using the
// conjugate gradient method, optionally with Jacobi preconditioning.
func CG(a *CSR, b []float64, opts CGOptions) ([]float64, SolveResult, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, SolveResult{}, ErrShape
	}
	if err := opts.fill(n); err != nil {
		return nil, SolveResult{}, err
	}

	var invDiag []float64
	if opts.Precondition {
		invDiag = make([]float64, n)
		for i, d := range a.Diag() {
			if d == 0 {
				return nil, SolveResult{}, ErrZeroDiagonal
			}
			invDiag[i] = 1 / d
		}
	}

	x := make([]float64, n)
	if opts.X0 != nil {
		copy(x, opts.X0)
	}
	r := make([]float64, n)
	if err := a.MulVecToWorkers(r, x, opts.Workers); err != nil {
		return nil, SolveResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}

	z := make([]float64, n)
	applyPrec := func() {
		if invDiag == nil {
			copy(z, r)
			return
		}
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
	}
	applyPrec()
	p := mat.CloneVec(z)
	rz := mat.Dot(r, z)
	ap := make([]float64, n)

	res := mat.Norm2(r) / bnorm
	res0 := res
	bestRes, bestIt := res, 0
	for it := 0; it < opts.MaxIter; it++ {
		if res <= opts.Tol {
			return x, SolveResult{Iterations: it, Residual: res}, nil
		}
		if err := ctxErr(opts.Ctx); err != nil {
			return x, SolveResult{Iterations: it, Residual: res}, err
		}
		if opts.StagnationWindow > 0 {
			if math.IsNaN(res) || math.IsInf(res, 0) || res > opts.DivergeFactor*math.Max(1, res0) {
				return x, SolveResult{Iterations: it, Residual: res}, ErrDiverged
			}
			if res < opts.StagnationImprove*bestRes {
				bestRes, bestIt = res, it
			} else if it-bestIt >= opts.StagnationWindow {
				return x, SolveResult{Iterations: it, Residual: res}, ErrStagnated
			}
		}
		if err := a.MulVecToWorkers(ap, p, opts.Workers); err != nil {
			return nil, SolveResult{}, err
		}
		pap := mat.Dot(p, ap)
		if pap <= 0 {
			// Not positive definite along p: cannot proceed.
			return nil, SolveResult{Iterations: it, Residual: res}, ErrNotConverged
		}
		alpha := rz / pap
		mat.AXPY(alpha, p, x)
		mat.AXPY(-alpha, ap, r)
		res = mat.Norm2(r) / bnorm
		applyPrec()
		rzNew := mat.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if res <= opts.Tol {
		return x, SolveResult{Iterations: opts.MaxIter, Residual: res}, nil
	}
	return x, SolveResult{Iterations: opts.MaxIter, Residual: res}, ErrNotConverged
}

// Jacobi solves A x = b by Jacobi iteration x ← D⁻¹(b − R x). It converges
// when A is strictly diagonally dominant, which holds for the hard
// criterion's D22−W22 system whenever every unlabeled node has positive
// similarity to a labeled node. It runs on all available cores; see
// JacobiWorkers.
func Jacobi(a *CSR, b []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	return JacobiWorkers(a, b, tol, maxIter, 0)
}

// JacobiWorkers is Jacobi with an explicit worker count (<= 0 selects
// GOMAXPROCS, 1 runs serially). Every sweep reads the frozen previous
// iterate and writes disjoint rows of the next one, so the schedule is
// embarrassingly parallel and the iterates are bitwise-identical across
// worker counts.
func JacobiWorkers(a *CSR, b []float64, tol float64, maxIter, workers int) ([]float64, SolveResult, error) {
	return JacobiCtx(nil, a, b, tol, maxIter, workers)
}

// JacobiCtx is JacobiWorkers with cooperative cancellation: a done context
// aborts with ctx.Err() within one sweep. A nil context never cancels.
func JacobiCtx(ctx context.Context, a *CSR, b []float64, tol float64, maxIter, workers int) ([]float64, SolveResult, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, SolveResult{}, ErrShape
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	diag := a.Diag()
	for _, d := range diag {
		if d == 0 {
			return nil, SolveResult{}, ErrZeroDiagonal
		}
	}
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	x := make([]float64, n)
	next := make([]float64, n)
	r := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		if err := ctxErr(ctx); err != nil {
			return x, SolveResult{Iterations: it}, err
		}
		parallel.For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				cols, vals := a.RowNNZ(i)
				s := b[i]
				for k, j := range cols {
					if j != i {
						s -= vals[k] * x[j]
					}
				}
				next[i] = s / diag[i]
			}
		})
		x, next = next, x
		if err := a.MulVecToWorkers(r, x, workers); err != nil {
			return nil, SolveResult{}, err
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		res := mat.Norm2(r) / bnorm
		if res <= tol {
			return x, SolveResult{Iterations: it + 1, Residual: res}, nil
		}
	}
	if err := a.MulVecTo(r, x); err != nil {
		return nil, SolveResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return x, SolveResult{Iterations: maxIter, Residual: mat.Norm2(r) / bnorm}, ErrNotConverged
}

// GaussSeidel solves A x = b by forward Gauss–Seidel sweeps. Like Jacobi it
// converges for strictly diagonally dominant systems, typically in fewer
// iterations.
func GaussSeidel(a *CSR, b []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	return GaussSeidelCtx(nil, a, b, tol, maxIter)
}

// GaussSeidelCtx is GaussSeidel with cooperative cancellation: a done
// context aborts with ctx.Err() within one sweep. A nil context never
// cancels.
func GaussSeidelCtx(ctx context.Context, a *CSR, b []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, SolveResult{}, ErrShape
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	diag := a.Diag()
	for _, d := range diag {
		if d == 0 {
			return nil, SolveResult{}, ErrZeroDiagonal
		}
	}
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	x := make([]float64, n)
	r := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		if err := ctxErr(ctx); err != nil {
			return x, SolveResult{Iterations: it}, err
		}
		for i := 0; i < n; i++ {
			cols, vals := a.RowNNZ(i)
			s := b[i]
			for k, j := range cols {
				if j != i {
					s -= vals[k] * x[j]
				}
			}
			x[i] = s / diag[i]
		}
		if err := a.MulVecTo(r, x); err != nil {
			return nil, SolveResult{}, err
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		res := mat.Norm2(r) / bnorm
		if res <= tol {
			return x, SolveResult{Iterations: it + 1, Residual: res}, nil
		}
	}
	if err := a.MulVecTo(r, x); err != nil {
		return nil, SolveResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return x, SolveResult{Iterations: maxIter, Residual: mat.Norm2(r) / bnorm}, ErrNotConverged
}

// SpectralRadiusEstimate estimates the spectral radius of the matrix by
// power iteration on AᵀA when A is asymmetric, or directly when symmetric.
// It is used for contraction diagnostics in the propagation solver.
func SpectralRadiusEstimate(a *CSR, maxIter int) (float64, error) {
	if a.rows != a.cols {
		return 0, ErrShape
	}
	if maxIter <= 0 {
		maxIter = 2000
	}
	n := a.rows
	if n == 0 {
		return 0, nil
	}
	x := mat.Ones(n)
	mat.ScaleVec(1/mat.Norm2(x), x)
	y := make([]float64, n)
	var lam float64
	for it := 0; it < maxIter; it++ {
		if err := a.MulVecTo(y, x); err != nil {
			return 0, err
		}
		ny := mat.Norm2(y)
		if ny == 0 {
			return 0, nil
		}
		newLam := ny
		for i := range x {
			x[i] = y[i] / ny
		}
		if it > 5 && math.Abs(newLam-lam) <= 1e-10*math.Max(1, newLam) {
			return newLam, nil
		}
		lam = newLam
	}
	return lam, nil
}
