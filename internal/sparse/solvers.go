package sparse

import (
	"context"
	"errors"
	"math"

	"repro/internal/mat"
	"repro/internal/parallel"
)

var (
	// ErrStagnated is returned when stagnation detection is enabled and the
	// residual has not improved over the configured iteration window. It is
	// the signal the auto fallback chain escalates on instead of spinning to
	// MaxIter.
	ErrStagnated = errors.New("sparse: iteration stagnated")
	// ErrDiverged is returned when the residual grows far beyond its
	// starting value or becomes non-finite.
	ErrDiverged = errors.New("sparse: iteration diverged")
)

// SolveResult reports how an iterative solve ended.
type SolveResult struct {
	// Iterations is the number of iterations performed.
	Iterations int
	// Residual is the final relative residual ‖b−Ax‖₂ / ‖b‖₂
	// (absolute when b = 0).
	Residual float64
}

// Preconditioner applies an approximate inverse of the system matrix:
// dst = M⁻¹ r. Implementations live in internal/precond (Jacobi scaling,
// zero-fill incomplete Cholesky); dst and r never alias and are fully
// overwritten. Apply must be deterministic — PCG's bitwise-reproducibility
// contract extends through it.
type Preconditioner interface {
	Apply(dst, r []float64)
}

// CGOptions configures the conjugate gradient solver.
type CGOptions struct {
	// Tol is the relative residual target; default 1e-10.
	Tol float64
	// MaxIter caps iterations; default 10*n.
	MaxIter int
	// Precondition enables Jacobi (diagonal) preconditioning.
	Precondition bool
	// X0 is the starting guess; default the zero vector.
	X0 []float64
	// Workers parallelizes the matrix-vector products over row ranges:
	// <= 0 (the default) selects GOMAXPROCS, 1 forces the serial path.
	// Dot products and vector updates stay serial, so the iterates are
	// bitwise-identical across worker counts.
	Workers int
	// Ctx, when non-nil, is checked once per iteration; a done context
	// aborts the solve with ctx.Err() (context.Canceled or
	// context.DeadlineExceeded) within one iteration sweep.
	Ctx context.Context
	// StagnationWindow, when > 0, enables stagnation detection: if the
	// relative residual fails to improve below StagnationImprove × its best
	// value for StagnationWindow consecutive iterations, the solve aborts
	// with ErrStagnated. Detection only observes the residual history, so
	// the iterates of a converging run are unchanged.
	StagnationWindow int
	// StagnationImprove is the required relative improvement factor per
	// window (default 0.99: the residual must drop at least 1% per window).
	StagnationImprove float64
	// DivergeFactor aborts with ErrDiverged when the residual exceeds
	// DivergeFactor × max(1, initial residual) or turns NaN/Inf
	// (default 1e8; only active when StagnationWindow > 0).
	DivergeFactor float64
}

// PCGOptions configures the preconditioned conjugate gradient solver. The
// embedded CGOptions carry the shared iteration controls (tolerance, caps,
// workers, context, stagnation/divergence guards).
type PCGOptions struct {
	CGOptions
	// M is the preconditioner; nil runs plain CG (or Jacobi when the
	// embedded Precondition flag is set, exactly as CG does).
	M Preconditioner
	// Dst, when non-nil, receives the solution (len n) and is returned as
	// x, so warm repeated solves allocate nothing for the result vector.
	// May alias X0 (the warm-start idiom: solve in place of the previous
	// solution).
	Dst []float64
	// Stop, when non-nil, is evaluated once per iteration on the current
	// iterate and the recursively updated residual; returning true accepts
	// the iterate and ends the solve with a nil error. It enables
	// acceptance criteria the 2-norm tolerance cannot express (e.g. the
	// pointwise residual bound a barrier certificate needs). The recursion
	// residual can drift from the true b−Ax, so acceptance-critical
	// callers must re-validate the returned iterate themselves.
	Stop func(x, r []float64) bool
	// Ws supplies the scratch vectors. nil draws one from the internal
	// size-bucketed pool for the duration of the call. Passing an explicit
	// workspace across repeated solves makes the warm path allocation-free.
	Ws *Workspace
}

func (o *CGOptions) fill(n int) error {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	if o.X0 != nil && len(o.X0) != n {
		return ErrShape
	}
	if o.StagnationImprove <= 0 || o.StagnationImprove >= 1 {
		o.StagnationImprove = 0.99
	}
	if o.DivergeFactor <= 0 {
		o.DivergeFactor = 1e8
	}
	return nil
}

// ctxErr reports the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Workspace scratch-slot layout for the CG/PCG engine.
const (
	wsCGResidual = iota
	wsCGPrecond
	wsCGDirection
	wsCGMatVec
	wsCGInvDiag
	wsCGSolution
	wsSweepPrev // Jacobi / Gauss–Seidel sweep buffers reuse the tail slots
	wsSweepNext
	wsSweepResidual
)

// CG solves A x = b for a symmetric positive definite CSR matrix using the
// conjugate gradient method, optionally with Jacobi preconditioning. It is
// the unpreconditioned/Jacobi façade over the PCG engine; the iterates are
// bit-for-bit those of the historical CG implementation.
func CG(a *CSR, b []float64, opts CGOptions) ([]float64, SolveResult, error) {
	return PCG(a, b, PCGOptions{CGOptions: opts})
}

// PCG solves A x = b by preconditioned conjugate gradient. With M == nil it
// degenerates to CG (identity preconditioner, or Jacobi when
// opts.Precondition is set). The engine draws every scratch vector from a
// Workspace, so a caller holding one (plus Dst) across repeated solves —
// λ sweeps, one-vs-rest right-hand sides — runs with zero steady-state heap
// allocation. Iterates are bitwise-identical across worker counts: only the
// matrix-vector products parallelize, with fixed per-row accumulation
// order.
func PCG(a *CSR, b []float64, opts PCGOptions) ([]float64, SolveResult, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, SolveResult{}, ErrShape
	}
	if err := opts.fill(n); err != nil {
		return nil, SolveResult{}, err
	}
	if opts.Dst != nil && len(opts.Dst) != n {
		return nil, SolveResult{}, ErrShape
	}
	ws := opts.Ws
	if ws == nil {
		ws = GetWorkspace(n)
		defer ws.Release()
	}

	var invDiag []float64
	if opts.M == nil && opts.Precondition {
		invDiag = ws.vec(wsCGInvDiag, n)
		a.DiagTo(invDiag)
		for i, d := range invDiag {
			if d == 0 {
				return nil, SolveResult{}, ErrZeroDiagonal
			}
			invDiag[i] = 1 / d
		}
	}

	x := opts.Dst
	if x == nil {
		x = make([]float64, n)
	}
	if opts.X0 != nil {
		copy(x, opts.X0)
	} else {
		for i := range x {
			x[i] = 0
		}
	}
	r := ws.vec(wsCGResidual, n)
	if err := a.MulVecToWorkers(r, x, opts.Workers); err != nil {
		return nil, SolveResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}

	z := ws.vec(wsCGPrecond, n)
	applyM := func() {
		switch {
		case opts.M != nil:
			opts.M.Apply(z, r)
		case invDiag != nil:
			for i := range z {
				z[i] = invDiag[i] * r[i]
			}
		default:
			copy(z, r)
		}
	}
	applyM()
	p := ws.vec(wsCGDirection, n)
	copy(p, z)
	rz := mat.Dot(r, z)
	ap := ws.vec(wsCGMatVec, n)

	res := mat.Norm2(r) / bnorm
	res0 := res
	bestRes, bestIt := res, 0
	for it := 0; it < opts.MaxIter; it++ {
		if res <= opts.Tol {
			return x, SolveResult{Iterations: it, Residual: res}, nil
		}
		if opts.Stop != nil && opts.Stop(x, r) {
			return x, SolveResult{Iterations: it, Residual: res}, nil
		}
		if err := ctxErr(opts.Ctx); err != nil {
			return x, SolveResult{Iterations: it, Residual: res}, err
		}
		if opts.StagnationWindow > 0 {
			if math.IsNaN(res) || math.IsInf(res, 0) || res > opts.DivergeFactor*math.Max(1, res0) {
				return x, SolveResult{Iterations: it, Residual: res}, ErrDiverged
			}
			if res < opts.StagnationImprove*bestRes {
				bestRes, bestIt = res, it
			} else if it-bestIt >= opts.StagnationWindow {
				return x, SolveResult{Iterations: it, Residual: res}, ErrStagnated
			}
		}
		if err := a.MulVecToWorkers(ap, p, opts.Workers); err != nil {
			return nil, SolveResult{}, err
		}
		pap := mat.Dot(p, ap)
		if pap <= 0 {
			// Not positive definite along p: cannot proceed.
			return nil, SolveResult{Iterations: it, Residual: res}, ErrNotConverged
		}
		alpha := rz / pap
		mat.AXPY(alpha, p, x)
		mat.AXPY(-alpha, ap, r)
		res = mat.Norm2(r) / bnorm
		applyM()
		rzNew := mat.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if res <= opts.Tol {
		return x, SolveResult{Iterations: opts.MaxIter, Residual: res}, nil
	}
	return x, SolveResult{Iterations: opts.MaxIter, Residual: res}, ErrNotConverged
}

// Jacobi solves A x = b by Jacobi iteration x ← D⁻¹(b − R x). It converges
// when A is strictly diagonally dominant, which holds for the hard
// criterion's D22−W22 system whenever every unlabeled node has positive
// similarity to a labeled node. It runs on all available cores; see
// JacobiWorkers.
func Jacobi(a *CSR, b []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	return JacobiWorkers(a, b, tol, maxIter, 0)
}

// JacobiWorkers is Jacobi with an explicit worker count (<= 0 selects
// GOMAXPROCS, 1 runs serially). Every sweep reads the frozen previous
// iterate and writes disjoint rows of the next one, so the schedule is
// embarrassingly parallel and the iterates are bitwise-identical across
// worker counts.
func JacobiWorkers(a *CSR, b []float64, tol float64, maxIter, workers int) ([]float64, SolveResult, error) {
	return JacobiCtx(nil, a, b, tol, maxIter, workers)
}

// JacobiCtx is JacobiWorkers with cooperative cancellation: a done context
// aborts with ctx.Err() within one sweep. A nil context never cancels.
// Scratch vectors come from the pooled solver workspace, so repeated calls
// reach a zero steady-state-allocation regime.
func JacobiCtx(ctx context.Context, a *CSR, b []float64, tol float64, maxIter, workers int) ([]float64, SolveResult, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, SolveResult{}, ErrShape
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	ws := GetWorkspace(n)
	defer ws.Release()
	diag := ws.vec(wsCGInvDiag, n)
	a.DiagTo(diag)
	for _, d := range diag {
		if d == 0 {
			return nil, SolveResult{}, ErrZeroDiagonal
		}
	}
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	// Both ping-pong iterates live in the workspace; the converged iterate is
	// copied into a fresh caller-owned slice on return (the only per-solve
	// allocation besides the workspace's first warm-up).
	x := ws.vec(wsSweepPrev, n)
	for i := range x {
		x[i] = 0
	}
	next := ws.vec(wsSweepNext, n)
	r := ws.vec(wsSweepResidual, n)
	out := func(v []float64) []float64 {
		o := make([]float64, n)
		copy(o, v)
		return o
	}
	// One closure for every sweep: it reads x through the captured variable,
	// which the swap below retargets, so the per-iteration loop allocates
	// nothing.
	sweep := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := a.RowNNZ(i)
			s := b[i]
			for k, j := range cols {
				if j != i {
					s -= vals[k] * x[j]
				}
			}
			next[i] = s / diag[i]
		}
	}
	for it := 0; it < maxIter; it++ {
		if err := ctxErr(ctx); err != nil {
			return out(x), SolveResult{Iterations: it}, err
		}
		parallel.For(workers, n, sweep)
		x, next = next, x
		if err := a.MulVecToWorkers(r, x, workers); err != nil {
			return nil, SolveResult{}, err
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		res := mat.Norm2(r) / bnorm
		if res <= tol {
			return out(x), SolveResult{Iterations: it + 1, Residual: res}, nil
		}
	}
	if err := a.MulVecTo(r, x); err != nil {
		return nil, SolveResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return out(x), SolveResult{Iterations: maxIter, Residual: mat.Norm2(r) / bnorm}, ErrNotConverged
}

// GaussSeidel solves A x = b by serial forward Gauss–Seidel sweeps. Like
// Jacobi it converges for strictly diagonally dominant systems, typically in
// fewer iterations. The serial sweep order is pinned: outputs are
// bit-for-bit those of the historical implementation.
func GaussSeidel(a *CSR, b []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	return GaussSeidelCtx(nil, a, b, tol, maxIter, 1)
}

// GaussSeidelWorkers is Gauss–Seidel with an explicit worker count, the
// same signature shape as JacobiWorkers (<= 0 selects GOMAXPROCS, 1 runs
// the pinned serial sweep). Unlike Jacobi — whose iterates are
// worker-count-invariant — a parallel Gauss–Seidel sweep necessarily
// changes the update schedule: workers > 1 runs a block-sequential hybrid
// (Gauss–Seidel ordering inside each of `workers` fixed contiguous blocks,
// frozen previous-sweep values across blocks). The block layout is a pure
// function of (n, resolved workers), so any fixed worker count is
// deterministic run-to-run; all schedules converge to the same fixed point.
func GaussSeidelWorkers(a *CSR, b []float64, tol float64, maxIter, workers int) ([]float64, SolveResult, error) {
	return GaussSeidelCtx(nil, a, b, tol, maxIter, workers)
}

// GaussSeidelCtx is GaussSeidelWorkers with cooperative cancellation: a done
// context aborts with ctx.Err() within one sweep. A nil context never
// cancels.
func GaussSeidelCtx(ctx context.Context, a *CSR, b []float64, tol float64, maxIter, workers int) ([]float64, SolveResult, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, SolveResult{}, ErrShape
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	ws := GetWorkspace(n)
	defer ws.Release()
	diag := ws.vec(wsCGInvDiag, n)
	a.DiagTo(diag)
	for _, d := range diag {
		if d == 0 {
			return nil, SolveResult{}, ErrZeroDiagonal
		}
	}
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	w := parallel.Workers(workers)
	if w > n {
		w = n
	}
	x := make([]float64, n)
	r := ws.vec(wsSweepResidual, n)

	var (
		blocks []parallel.Block
		prev   []float64
		sweep  func(bi int, blk parallel.Block)
	)
	if w > 1 {
		blocks = parallel.Split(n, w)
		prev = ws.vec(wsSweepPrev, n)
		sweep = func(_ int, blk parallel.Block) {
			for i := blk.Lo; i < blk.Hi; i++ {
				cols, vals := a.RowNNZ(i)
				s := b[i]
				for k, j := range cols {
					if j == i {
						continue
					}
					if j >= blk.Lo && j < blk.Hi {
						// In-block: Gauss–Seidel order (rows above i in this
						// block already hold this sweep's values).
						s -= vals[k] * x[j]
					} else {
						// Cross-block: frozen previous-sweep snapshot, so
						// concurrent block writes never race with reads.
						s -= vals[k] * prev[j]
					}
				}
				x[i] = s / diag[i]
			}
		}
	}
	for it := 0; it < maxIter; it++ {
		if err := ctxErr(ctx); err != nil {
			return x, SolveResult{Iterations: it}, err
		}
		if w == 1 {
			for i := 0; i < n; i++ {
				cols, vals := a.RowNNZ(i)
				s := b[i]
				for k, j := range cols {
					if j != i {
						s -= vals[k] * x[j]
					}
				}
				x[i] = s / diag[i]
			}
		} else {
			copy(prev, x)
			parallel.ForBlocks(w, blocks, sweep)
		}
		if err := a.MulVecToWorkers(r, x, workers); err != nil {
			return nil, SolveResult{}, err
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		res := mat.Norm2(r) / bnorm
		if res <= tol {
			return x, SolveResult{Iterations: it + 1, Residual: res}, nil
		}
	}
	if err := a.MulVecTo(r, x); err != nil {
		return nil, SolveResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return x, SolveResult{Iterations: maxIter, Residual: mat.Norm2(r) / bnorm}, ErrNotConverged
}

// SpectralRadiusEstimate estimates the spectral radius of the matrix by
// power iteration on AᵀA when A is asymmetric, or directly when symmetric.
// It is used for contraction diagnostics in the propagation solver.
func SpectralRadiusEstimate(a *CSR, maxIter int) (float64, error) {
	if a.rows != a.cols {
		return 0, ErrShape
	}
	if maxIter <= 0 {
		maxIter = 2000
	}
	n := a.rows
	if n == 0 {
		return 0, nil
	}
	x := mat.Ones(n)
	mat.ScaleVec(1/mat.Norm2(x), x)
	y := make([]float64, n)
	var lam float64
	for it := 0; it < maxIter; it++ {
		if err := a.MulVecTo(y, x); err != nil {
			return 0, err
		}
		ny := mat.Norm2(y)
		if ny == 0 {
			return 0, nil
		}
		newLam := ny
		for i := range x {
			x[i] = y[i] / ny
		}
		if it > 5 && math.Abs(newLam-lam) <= 1e-10*math.Max(1, newLam) {
			return newLam, nil
		}
		lam = newLam
	}
	return lam, nil
}
