package sparse

import (
	"fmt"
)

// overlayEntry is one symmetric patch entry: the column (always a later-
// issued id than the row it patches) and its weight.
type overlayEntry struct {
	col int
	val float64
}

// overlayRow holds the initial adjacency of an appended row: its edges to
// older ids, column-sorted.
type overlayRow struct {
	cols []int
	vals []float64
}

// Overlay is a mutable view over an immutable symmetric CSR: rows and
// edges appended since the base was built live in side structures, and a
// dead mask hides deleted ids. Merge compacts the overlay into a fresh
// CSR over the live ids (in id order), which becomes the natural base for
// the next overlay generation.
//
// The sorted-row invariant is maintained structurally rather than by
// sorting: an appended row's initial columns all precede its own id, and
// the patches later rows add to it carry strictly increasing ids, so every
// logical row is the concatenation of two sorted runs split at the row's
// own id. That makes Merge a linear copy.
//
// An Overlay is not safe for concurrent mutation.
type Overlay struct {
	base *CSR
	n0   int // base dimension; ids < n0 resolve through base rows
	n    int // total ids issued (live + dead)

	dead      []bool
	deadCount int

	own     []overlayRow     // rows n0..n-1: initial edges to older ids
	tails   [][]overlayEntry // per id: edges added by later-appended rows
	tailNNZ int
	ownNNZ  int
}

// NewOverlay starts an overlay generation over a square symmetric base.
// The base is referenced, not copied.
func NewOverlay(base *CSR) (*Overlay, error) {
	if base == nil {
		return nil, fmt.Errorf("sparse: nil overlay base: %w", ErrShape)
	}
	r, c := base.Dims()
	if r != c {
		return nil, fmt.Errorf("sparse: overlay base %dx%d not square: %w", r, c, ErrShape)
	}
	return &Overlay{
		base:  base,
		n0:    r,
		n:     r,
		dead:  make([]bool, r),
		tails: make([][]overlayEntry, r),
	}, nil
}

// Rows returns the total number of ids issued, dead ones included.
func (o *Overlay) Rows() int { return o.n }

// Live returns the number of live ids.
func (o *Overlay) Live() int { return o.n - o.deadCount }

// Dead reports whether id has been deleted.
func (o *Overlay) Dead(id int) bool { return id >= 0 && id < o.n && o.dead[id] }

// PendingNNZ returns the stored entries held outside the base (appended
// rows plus their symmetric patches).
func (o *Overlay) PendingNNZ() int { return o.ownNNZ + o.tailNNZ }

// AppendRow issues the next id and records its symmetric adjacency to
// older live ids. cols must be strictly increasing, in [0, Rows()), and
// live; vals are the matching weights. Both slices are copied. Returns
// the new id.
func (o *Overlay) AppendRow(cols []int, vals []float64) (int, error) {
	if len(cols) != len(vals) {
		return 0, fmt.Errorf("sparse: overlay row %d cols, %d vals: %w", len(cols), len(vals), ErrShape)
	}
	id := o.n
	prev := -1
	for i, c := range cols {
		if c <= prev {
			return 0, fmt.Errorf("sparse: overlay row columns not strictly increasing at %d: %w", i, ErrShape)
		}
		if c >= id {
			return 0, fmt.Errorf("sparse: overlay row column %d >= new id %d: %w", c, id, ErrIndex)
		}
		if o.dead[c] {
			return 0, fmt.Errorf("sparse: overlay row references dead id %d: %w", c, ErrIndex)
		}
		prev = c
	}
	row := overlayRow{
		cols: append([]int(nil), cols...),
		vals: append([]float64(nil), vals...),
	}
	o.own = append(o.own, row)
	o.tails = append(o.tails, nil)
	o.dead = append(o.dead, false)
	for i, c := range cols {
		o.tails[c] = append(o.tails[c], overlayEntry{col: id, val: vals[i]})
	}
	o.ownNNZ += len(cols)
	o.tailNNZ += len(cols)
	o.n++
	return id, nil
}

// Delete marks a live id dead. Its row and every symmetric mirror are
// dropped at the next Merge; until then they are skipped entry by entry.
func (o *Overlay) Delete(id int) error {
	if id < 0 || id >= o.n || o.dead[id] {
		return fmt.Errorf("sparse: overlay delete of dead or unknown id %d: %w", id, ErrIndex)
	}
	o.dead[id] = true
	o.deadCount++
	return nil
}

// rowRuns returns the two sorted runs making up the logical row of id:
// the head (columns < id for appended rows, < n0 for base rows) and the
// tail (columns > id).
func (o *Overlay) rowRuns(id int) (headCols []int, headVals []float64, tail []overlayEntry) {
	if id < o.n0 {
		cols, vals := o.base.RowNNZ(id)
		return cols, vals, o.tails[id]
	}
	r := o.own[id-o.n0]
	return r.cols, r.vals, o.tails[id]
}

// Merge compacts the overlay into a CSR over the live ids, renumbered
// densely in id order, and returns the new matrix together with ids,
// where ids[newIndex] = old id. The result is bitwise-identical to
// assembling the same live adjacency from scratch: entry values are
// copied, never recomputed.
func (o *Overlay) Merge() (*CSR, []int, error) {
	live := o.Live()
	ids := make([]int, 0, live)
	newIdx := make([]int, o.n)
	for id := 0; id < o.n; id++ {
		if o.dead[id] {
			newIdx[id] = -1
			continue
		}
		newIdx[id] = len(ids)
		ids = append(ids, id)
	}

	indptr := make([]int, live+1)
	nnz := 0
	for k, id := range ids {
		hc, _, tail := o.rowRuns(id)
		cnt := 0
		for _, c := range hc {
			if !o.dead[c] {
				cnt++
			}
		}
		for _, e := range tail {
			if !o.dead[e.col] {
				cnt++
			}
		}
		nnz += cnt
		indptr[k+1] = nnz
	}

	indices := make([]int, nnz)
	data := make([]float64, nnz)
	for k, id := range ids {
		p := indptr[k]
		hc, hv, tail := o.rowRuns(id)
		for i, c := range hc {
			if o.dead[c] {
				continue
			}
			indices[p] = newIdx[c]
			data[p] = hv[i]
			p++
		}
		for _, e := range tail {
			if o.dead[e.col] {
				continue
			}
			indices[p] = newIdx[e.col]
			data[p] = e.val
			p++
		}
	}
	w, err := NewCSR(live, live, indptr, indices, data)
	if err != nil {
		return nil, nil, fmt.Errorf("sparse: overlay merge: %w", err)
	}
	return w, ids, nil
}
