package sparse

import (
	"math"
	"testing"
)

// rcmTestGraphs builds a family of symmetric SPD test systems with varied
// structure: a path, a 2-D grid, a disconnected two-cluster graph, and a
// pseudo-random geometric graph. All are Laplacian + diagonal shifts, so
// every one is an M-matrix with positive diagonal.
func rcmTestGraphs(t *testing.T) map[string]*CSR {
	t.Helper()
	out := map[string]*CSR{}

	// Path graph, n=64: bandwidth 1 already, RCM must not worsen it.
	{
		n := 64
		coo := NewCOO(n, n)
		for i := 0; i < n; i++ {
			mustAdd(t, coo, i, i, 2.5)
			if i+1 < n {
				mustAddSym(t, coo, i, i+1, -1)
			}
		}
		out["path"] = coo.ToCSR()
	}

	// 8x8 grid with natural ordering: bandwidth 8; RCM should not increase.
	{
		side := 8
		n := side * side
		coo := NewCOO(n, n)
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				i := r*side + c
				mustAdd(t, coo, i, i, 4.5)
				if c+1 < side {
					mustAddSym(t, coo, i, i+1, -1)
				}
				if r+1 < side {
					mustAddSym(t, coo, i, i+side, -1)
				}
			}
		}
		out["grid"] = coo.ToCSR()
	}

	// Two disconnected cliques bridged by nothing: exercises the
	// per-component loop.
	{
		n := 20
		coo := NewCOO(n, n)
		for i := 0; i < n; i++ {
			mustAdd(t, coo, i, i, 12)
		}
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				mustAddSym(t, coo, i, j, -1)
				mustAddSym(t, coo, i+10, j+10, -1)
			}
		}
		out["two-cliques"] = coo.ToCSR()
	}

	// Pseudo-random sparse symmetric system via a fixed LCG: scrambled
	// ordering, so RCM has real work to do.
	{
		n := 120
		coo := NewCOO(n, n)
		state := uint64(42)
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 33
		}
		deg := make([]float64, n)
		type edge struct{ i, j int }
		seen := map[edge]bool{}
		for e := 0; e < 4*n; e++ {
			i := int(next() % uint64(n))
			j := int(next() % uint64(n))
			if i == j {
				continue
			}
			if i > j {
				i, j = j, i
			}
			if seen[edge{i, j}] {
				continue
			}
			seen[edge{i, j}] = true
			mustAddSym(t, coo, i, j, -1)
			deg[i]++
			deg[j]++
		}
		for i := 0; i < n; i++ {
			mustAdd(t, coo, i, i, deg[i]+1.5)
		}
		out["random"] = coo.ToCSR()
	}
	return out
}

func mustAdd(t *testing.T, coo *COO, i, j int, v float64) {
	t.Helper()
	if err := coo.Add(i, j, v); err != nil {
		t.Fatal(err)
	}
}

func mustAddSym(t *testing.T, coo *COO, i, j int, v float64) {
	t.Helper()
	if err := coo.AddSym(i, j, v); err != nil {
		t.Fatal(err)
	}
}

func TestRCMProducesValidPermutation(t *testing.T) {
	for name, a := range rcmTestGraphs(t) {
		perm, err := RCM(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !validPerm(perm, a.Rows()) {
			t.Fatalf("%s: RCM returned an invalid permutation %v", name, perm)
		}
		// Deterministic: same matrix, same permutation.
		again, err := RCM(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range perm {
			if perm[i] != again[i] {
				t.Fatalf("%s: RCM not deterministic at %d", name, i)
			}
		}
	}
}

func TestRCMBandwidthNeverIncreases(t *testing.T) {
	for name, a := range rcmTestGraphs(t) {
		perm, err := RCM(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pa, err := a.Permute(perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, orig := pa.Bandwidth(), a.Bandwidth(); got > orig {
			t.Fatalf("%s: RCM increased bandwidth %d -> %d", name, orig, got)
		}
	}
}

func TestPermuteInverseRoundTrip(t *testing.T) {
	for name, a := range rcmTestGraphs(t) {
		perm, err := RCM(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pa, err := a.Permute(perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := pa.Permute(InvertPerm(perm))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := a.Rows()
		for i := 0; i < n; i++ {
			ci, vi := a.RowNNZ(i)
			cj, vj := back.RowNNZ(i)
			if len(ci) != len(cj) {
				t.Fatalf("%s: row %d nnz %d -> %d after round trip", name, i, len(ci), len(cj))
			}
			for k := range ci {
				if ci[k] != cj[k] || vi[k] != vj[k] {
					t.Fatalf("%s: row %d entry %d differs after round trip", name, i, k)
				}
			}
		}
	}
}

// TestPermutedSolveMatchesOriginal solves A x = b directly and as
// P A Pᵀ y = P b followed by un-permutation, and checks the two agree: the
// reordered solve path must change performance only, never the answer
// (beyond iterative tolerance).
func TestPermutedSolveMatchesOriginal(t *testing.T) {
	for name, a := range rcmTestGraphs(t) {
		n := a.Rows()
		b := make([]float64, n)
		for i := range b {
			b[i] = math.Sin(float64(3*i + 1))
		}
		x, _, err := CG(a, b, CGOptions{Tol: 1e-12, Precondition: true})
		if err != nil {
			t.Fatalf("%s: direct solve: %v", name, err)
		}

		perm, err := RCM(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pa, err := a.Permute(perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pb := make([]float64, n)
		PermuteVecTo(pb, b, perm)
		py, _, err := CG(pa, pb, CGOptions{Tol: 1e-12, Precondition: true})
		if err != nil {
			t.Fatalf("%s: permuted solve: %v", name, err)
		}
		y := make([]float64, n)
		UnpermuteVecTo(y, py, perm)

		for i := range x {
			if d := math.Abs(x[i] - y[i]); d > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("%s: solutions differ at %d: %g vs %g", name, i, x[i], y[i])
			}
		}
	}
}

// TestPermuteMapRefillTracksValues checks the numeric-refill path sweeps
// rely on: after scaling the source values, RefillPermuted must reproduce a
// fresh permutation of the scaled matrix exactly.
func TestPermuteMapRefillTracksValues(t *testing.T) {
	a := rcmTestGraphs(t)["random"]
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	pa, posMap, err := a.PermuteMap(perm)
	if err != nil {
		t.Fatal(err)
	}
	// Scale the source in place (the sweep's refill step).
	for k := range a.data {
		a.data[k] *= 3.25
	}
	if err := pa.RefillPermuted(a, posMap); err != nil {
		t.Fatal(err)
	}
	fresh, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	for k := range pa.data {
		if pa.data[k] != fresh.data[k] {
			t.Fatalf("refilled value %d = %g, fresh permutation has %g", k, pa.data[k], fresh.data[k])
		}
	}
}

func TestPermuteVecRoundTrip(t *testing.T) {
	perm := []int{3, 1, 4, 0, 2}
	src := []float64{10, 11, 12, 13, 14}
	fwd := make([]float64, 5)
	back := make([]float64, 5)
	PermuteVecTo(fwd, src, perm)
	UnpermuteVecTo(back, fwd, perm)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("round trip broke at %d: %g", i, back[i])
		}
	}
	if fwd[0] != 13 || fwd[4] != 12 {
		t.Fatalf("PermuteVecTo wrong: %v", fwd)
	}
}

func TestBandwidth(t *testing.T) {
	coo := NewCOO(4, 4)
	mustAdd(t, coo, 0, 0, 1)
	mustAdd(t, coo, 3, 3, 1)
	if bw := coo.ToCSR().Bandwidth(); bw != 0 {
		t.Fatalf("diagonal matrix bandwidth = %d", bw)
	}
	mustAddSym(t, coo, 0, 3, -1)
	if bw := coo.ToCSR().Bandwidth(); bw != 3 {
		t.Fatalf("bandwidth = %d, want 3", bw)
	}
}

func TestRCMRejectsNonSquare(t *testing.T) {
	coo := NewCOO(3, 4)
	mustAdd(t, coo, 0, 0, 1)
	if _, err := RCM(coo.ToCSR()); err == nil {
		t.Fatal("RCM accepted a non-square matrix")
	}
}
