package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// randSPDCSR builds a random sparse strictly diagonally dominant SPD matrix.
func randSPDCSR(rng *rand.Rand, n int) *CSR {
	coo := NewCOO(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				v := rng.NormFloat64()
				_ = coo.AddSym(i, j, v)
				rowAbs[i] += math.Abs(v)
				rowAbs[j] += math.Abs(v)
			}
		}
	}
	for i := 0; i < n; i++ {
		_ = coo.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return coo.ToCSR()
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func checkSolve(t *testing.T, name string, a *CSR, x, b []float64) {
	t.Helper()
	ax, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if r := mat.NormInf(mat.SubVec(ax, b)); r > 1e-7 {
		t.Fatalf("%s: residual %g too large", name, r)
	}
}

func TestCGSolvesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		a := randSPDCSR(rng, n)
		b := randVec(rng, n)
		x, res, err := CG(a, b, CGOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v (res=%+v)", trial, err, res)
		}
		checkSolve(t, "CG", a, x, b)
		if res.Iterations > 10*n+100 {
			t.Fatalf("trial %d: too many iterations %d", trial, res.Iterations)
		}
	}
}

func TestCGPreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randSPDCSR(rng, 40)
	b := randVec(rng, 40)
	x, _, err := CG(a, b, CGOptions{Precondition: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSolve(t, "PCG", a, x, b)
}

func TestCGWithX0(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randSPDCSR(rng, 10)
	b := randVec(rng, 10)
	exact, _, err := CG(a, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact solution converges immediately.
	x, res, err := CG(a, b, CGOptions{X0: exact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("warm-started CG took %d iterations", res.Iterations)
	}
	checkSolve(t, "CG warm", a, x, b)
}

func TestCGZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randSPDCSR(rng, 5)
	x, _, err := CG(a, make([]float64, 5), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mat.NormInf(x) != 0 {
		t.Fatalf("CG with b=0 should return 0, got %v", x)
	}
}

func TestCGShapeErrors(t *testing.T) {
	a := randSPDCSR(rand.New(rand.NewSource(1)), 4)
	if _, _, err := CG(a, []float64{1}, CGOptions{}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, _, err := CG(a, make([]float64, 4), CGOptions{X0: []float64{1}}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for bad X0, got %v", err)
	}
}

func TestCGIndefiniteFails(t *testing.T) {
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 0, 1)
	_ = coo.Add(1, 1, -1)
	a := coo.ToCSR()
	if _, _, err := CG(a, []float64{1, 1}, CGOptions{}); err == nil {
		t.Fatal("CG on indefinite matrix must fail")
	}
}

func TestJacobiSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(20)
		a := randSPDCSR(rng, n)
		b := randVec(rng, n)
		x, _, err := Jacobi(a, b, 1e-10, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkSolve(t, "Jacobi", a, x, b)
	}
}

func TestGaussSeidelSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(20)
		a := randSPDCSR(rng, n)
		b := randVec(rng, n)
		x, _, err := GaussSeidel(a, b, 1e-10, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkSolve(t, "GaussSeidel", a, x, b)
	}
}

func TestGaussSeidelFasterThanJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randSPDCSR(rng, 30)
	b := randVec(rng, 30)
	_, rj, err := Jacobi(a, b, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, rg, err := GaussSeidel(a, b, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Iterations > rj.Iterations {
		t.Fatalf("Gauss–Seidel (%d it) slower than Jacobi (%d it)", rg.Iterations, rj.Iterations)
	}
}

func TestIterativeSolversAgreeWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randSPDCSR(rng, 15)
	b := randVec(rng, 15)
	want, err := mat.SolveSPD(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	xcg, _, err := CG(a, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(xcg, want, 1e-7) {
		t.Fatal("CG disagrees with dense solve")
	}
	xgs, _, err := GaussSeidel(a, b, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(xgs, want, 1e-6) {
		t.Fatal("Gauss–Seidel disagrees with dense solve")
	}
}

func TestZeroDiagonalErrors(t *testing.T) {
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 1, 1)
	_ = coo.Add(1, 0, 1)
	a := coo.ToCSR()
	b := []float64{1, 1}
	if _, _, err := Jacobi(a, b, 0, 0); !errors.Is(err, ErrZeroDiagonal) {
		t.Fatalf("Jacobi: want ErrZeroDiagonal, got %v", err)
	}
	if _, _, err := GaussSeidel(a, b, 0, 0); !errors.Is(err, ErrZeroDiagonal) {
		t.Fatalf("GaussSeidel: want ErrZeroDiagonal, got %v", err)
	}
	if _, _, err := CG(a, b, CGOptions{Precondition: true}); !errors.Is(err, ErrZeroDiagonal) {
		t.Fatalf("CG: want ErrZeroDiagonal, got %v", err)
	}
}

func TestJacobiNotConverged(t *testing.T) {
	// Not diagonally dominant: Jacobi diverges or stalls within 3 iterations.
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 0, 1)
	_ = coo.Add(0, 1, 5)
	_ = coo.Add(1, 0, 5)
	_ = coo.Add(1, 1, 1)
	a := coo.ToCSR()
	if _, _, err := Jacobi(a, []float64{1, 1}, 1e-12, 3); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
}

func TestSpectralRadiusEstimate(t *testing.T) {
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 0, 3)
	_ = coo.Add(1, 1, 1)
	a := coo.ToCSR()
	r, err := SpectralRadiusEstimate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-3) > 1e-6 {
		t.Fatalf("spectral radius = %v, want 3", r)
	}
	rect := NewCOO(2, 3).ToCSR()
	if _, err := SpectralRadiusEstimate(rect, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestSpectralRadiusZeroMatrix(t *testing.T) {
	a := NewCOO(3, 3).ToCSR()
	r, err := SpectralRadiusEstimate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("zero matrix radius = %v", r)
	}
}
