package sparse

import (
	"math/rand"
	"testing"
)

// denseSym builds a random symmetric adjacency (zero diagonal) as a dense
// matrix for reference.
func denseSym(n int, density float64, rng *rand.Rand) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := rng.Float64() + 0.1
				a[i][j], a[j][i] = v, v
			}
		}
	}
	return a
}

// csrFromDense assembles a CSR from a dense matrix, skipping zeros.
func csrFromDense(a [][]float64) *CSR {
	n := len(a)
	indptr := make([]int, n+1)
	var indices []int
	var data []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a[i][j] != 0 {
				indices = append(indices, j)
				data = append(data, a[i][j])
			}
		}
		indptr[i+1] = len(indices)
	}
	m, err := NewCSR(n, n, indptr, indices, data)
	if err != nil {
		panic(err)
	}
	return m
}

func TestOverlayMergeMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n0 = 40
	dense := denseSym(n0, 0.2, rng)
	base := csrFromDense(dense)
	o, err := NewOverlay(base)
	if err != nil {
		t.Fatal(err)
	}

	alive := make([]bool, n0)
	for i := range alive {
		alive[i] = true
	}

	// Random interleaving of appends and deletes, mirrored on the dense
	// reference.
	for step := 0; step < 120; step++ {
		if rng.Float64() < 0.7 {
			id := len(dense)
			var cols []int
			var vals []float64
			for c := 0; c < id; c++ {
				if alive[c] && rng.Float64() < 0.15 {
					cols = append(cols, c)
					vals = append(vals, rng.Float64()+0.1)
				}
			}
			got, err := o.AppendRow(cols, vals)
			if err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
			if got != id {
				t.Fatalf("step %d: id %d want %d", step, got, id)
			}
			for i := range dense {
				dense[i] = append(dense[i], 0)
			}
			row := make([]float64, id+1)
			for i, c := range cols {
				row[c] = vals[i]
				dense[c][id] = vals[i]
			}
			dense = append(dense, row)
			alive = append(alive, true)
		} else {
			id := rng.Intn(len(dense))
			if !alive[id] {
				continue
			}
			if err := o.Delete(id); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			alive[id] = false
		}
	}

	w, ids, err := o.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if w.Rows() != o.Live() || len(ids) != o.Live() {
		t.Fatalf("merged dims %d, ids %d, live %d", w.Rows(), len(ids), o.Live())
	}

	// Reference: compact the dense matrix over live ids in order.
	var liveIds []int
	for id, a := range alive {
		if a {
			liveIds = append(liveIds, id)
		}
	}
	for k, id := range liveIds {
		if ids[k] != id {
			t.Fatalf("ids[%d]=%d want %d", k, ids[k], id)
		}
	}
	for a, ia := range liveIds {
		for b, ib := range liveIds {
			if got, want := w.At(a, b), dense[ia][ib]; got != want {
				t.Fatalf("W[%d,%d]=%v want %v", a, b, got, want)
			}
		}
	}
	if !w.IsSymmetric(0) {
		t.Fatal("merged matrix not exactly symmetric")
	}

	// The merged matrix must be a valid base for the next generation.
	o2, err := NewOverlay(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o2.Merge(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayValidation(t *testing.T) {
	base := csrFromDense(denseSym(5, 0.5, rand.New(rand.NewSource(2))))
	o, err := NewOverlay(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AppendRow([]int{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("duplicate columns accepted")
	}
	if _, err := o.AppendRow([]int{2, 1}, []float64{1, 1}); err == nil {
		t.Fatal("unsorted columns accepted")
	}
	if _, err := o.AppendRow([]int{5}, []float64{1}); err == nil {
		t.Fatal("self/future column accepted")
	}
	if _, err := o.AppendRow([]int{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := o.Delete(9); err == nil {
		t.Fatal("delete of unknown id accepted")
	}
	if err := o.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(3); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := o.AppendRow([]int{3}, []float64{1}); err == nil {
		t.Fatal("edge to dead id accepted")
	}
	if o.Live() != 4 {
		t.Fatalf("live %d want 4", o.Live())
	}
}

func TestOverlayEmptyBase(t *testing.T) {
	// A zero-row base still supports append-only growth.
	empty, err := NewCSR(0, 0, []int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOverlay(empty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AppendRow(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AppendRow([]int{0}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	w, ids, err := o.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || w.At(0, 1) != 2 || w.At(1, 0) != 2 {
		t.Fatalf("unexpected merge: ids=%v w01=%v", ids, w.At(0, 1))
	}
}
