package sparse

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func buildCSR(t *testing.T, r, c int, entries [][3]float64) *CSR {
	t.Helper()
	coo := NewCOO(r, c)
	for _, e := range entries {
		if err := coo.Add(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return coo.ToCSR()
}

func TestCOOBasics(t *testing.T) {
	coo := NewCOO(2, 3)
	if coo.Rows() != 2 || coo.Cols() != 3 {
		t.Fatal("dims wrong")
	}
	if err := coo.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := coo.Add(0, 0, 0); err != nil { // zero is skipped
		t.Fatal(err)
	}
	if coo.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (zeros skipped)", coo.NNZ())
	}
	if err := coo.Add(2, 0, 1); !errors.Is(err, ErrIndex) {
		t.Fatalf("want ErrIndex, got %v", err)
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO(2, 2)
	_ = coo.Add(1, 1, 2)
	_ = coo.Add(1, 1, 3)
	m := coo.ToCSR()
	if got := m.At(1, 1); got != 5 {
		t.Fatalf("At(1,1) = %v, want 5", got)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 after merge", m.NNZ())
	}
}

func TestAddSym(t *testing.T) {
	coo := NewCOO(3, 3)
	if err := coo.AddSym(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := coo.AddSym(2, 2, 7); err != nil {
		t.Fatal(err)
	}
	m := coo.ToCSR()
	if m.At(0, 1) != 2 || m.At(1, 0) != 2 || m.At(2, 2) != 7 {
		t.Fatal("AddSym entries wrong")
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if err := coo.AddSym(5, 0, 1); !errors.Is(err, ErrIndex) {
		t.Fatalf("want ErrIndex, got %v", err)
	}
}

func TestCSRAtAndStructure(t *testing.T) {
	m := buildCSR(t, 3, 3, [][3]float64{{0, 2, 3}, {1, 0, 4}, {2, 1, 5}})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(2, 1) != 5 {
		t.Fatal("stored entries wrong")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("missing entry should read as zero")
	}
	cols, vals := m.RowNNZ(1)
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 4 {
		t.Fatalf("RowNNZ(1) = %v %v", cols, vals)
	}
}

func TestCSRAtPanics(t *testing.T) {
	m := buildCSR(t, 2, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range must panic")
		}
	}()
	m.At(2, 0)
}

func TestMulVec(t *testing.T) {
	m := buildCSR(t, 2, 3, [][3]float64{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	y, err := m.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		d := mat.NewDense(r, c)
		d.Apply(func(_, _ int, _ float64) float64 {
			if rng.Float64() < 0.5 {
				return 0
			}
			return rng.NormFloat64()
		})
		s := FromDense(d, 0)
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want, _ := mat.MulVec(d, x)
		got, err := s.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecEqual(got, want, 1e-12) {
			t.Fatalf("trial %d: sparse %v vs dense %v", trial, got, want)
		}
	}
}

func TestDiagRowSums(t *testing.T) {
	m := buildCSR(t, 2, 2, [][3]float64{{0, 0, 1}, {0, 1, 2}, {1, 1, 4}})
	d := m.Diag()
	if d[0] != 1 || d[1] != 4 {
		t.Fatalf("Diag = %v", d)
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 4 {
		t.Fatalf("RowSums = %v", rs)
	}
}

func TestToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := mat.NewDense(5, 4)
	d.Apply(func(_, _ int, _ float64) float64 {
		if rng.Float64() < 0.6 {
			return 0
		}
		return rng.NormFloat64()
	})
	back := FromDense(d, 0).ToDense()
	if !back.Equal(d, 0) {
		t.Fatal("ToDense(FromDense(d)) != d")
	}
}

func TestFromDenseDropTol(t *testing.T) {
	d, _ := mat.NewDenseData(1, 3, []float64{1e-14, -1e-14, 1})
	s := FromDense(d, 1e-12)
	if s.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 after drop", s.NNZ())
	}
}

func TestTranspose(t *testing.T) {
	m := buildCSR(t, 2, 3, [][3]float64{{0, 1, 5}, {1, 2, 7}})
	tr := m.Transpose()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("transpose dims (%d,%d)", r, c)
	}
	if tr.At(1, 0) != 5 || tr.At(2, 1) != 7 {
		t.Fatal("transpose entries wrong")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := buildCSR(t, 2, 2, [][3]float64{{0, 1, 2}, {1, 0, 2}, {0, 0, 1}})
	if !sym.IsSymmetric(0) {
		t.Fatal("symmetric matrix misreported")
	}
	asym := buildCSR(t, 2, 2, [][3]float64{{0, 1, 2}})
	if asym.IsSymmetric(0) {
		t.Fatal("asymmetric matrix misreported")
	}
	rect := buildCSR(t, 2, 3, nil)
	if rect.IsSymmetric(0) {
		t.Fatal("rectangular cannot be symmetric")
	}
}

// Property: for random sparse symmetric matrices, (Aᵀ)ᵀ = A and
// CSR At agrees with the dense expansion everywhere.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		coo := NewCOO(n, n)
		for k := 0; k < n*2; k++ {
			_ = coo.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		m := coo.ToCSR()
		tt := m.Transpose().Transpose()
		return tt.ToDense().Equal(m.ToDense(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
