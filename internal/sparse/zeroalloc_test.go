package sparse

import "testing"

// zeroAllocSystem builds a 512-unknown SPD tridiagonal system, small enough
// that SpMV stays on the serial inline path.
func zeroAllocSystem(t *testing.T) (*CSR, []float64) {
	t.Helper()
	n := 512
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		mustAdd(t, coo, i, i, 2.5)
		if i+1 < n {
			mustAddSym(t, coo, i, i+1, -1)
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	return coo.ToCSR(), b
}

// TestZeroAllocSolve pins the zero-allocation contract of the warm PCG
// path: with a caller-held Workspace and destination buffer, repeated
// solves must not touch the heap. CI runs this as an allocation-regression
// gate.
func TestZeroAllocSolve(t *testing.T) {
	a, b := zeroAllocSystem(t)
	n := a.Rows()
	ws := NewWorkspace() // unpooled: no sync.Pool effects in the measurement
	dst := make([]float64, n)
	solve := func() {
		_, _, err := PCG(a, b, PCGOptions{
			CGOptions: CGOptions{Tol: 1e-10, Precondition: true, X0: dst, Workers: 1},
			Dst:       dst,
			Ws:        ws,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm: grow workspace buffers once
	if allocs := testing.AllocsPerRun(100, solve); allocs != 0 {
		t.Fatalf("warm PCG path allocates %.1f objects per solve, want 0", allocs)
	}
}

// TestZeroAllocSolveUnpreconditioned covers the plain-CG variant of the
// same contract.
func TestZeroAllocSolveUnpreconditioned(t *testing.T) {
	a, b := zeroAllocSystem(t)
	n := a.Rows()
	ws := NewWorkspace()
	dst := make([]float64, n)
	solve := func() {
		_, _, err := PCG(a, b, PCGOptions{
			CGOptions: CGOptions{Tol: 1e-10, X0: dst, Workers: 1},
			Dst:       dst,
			Ws:        ws,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	solve()
	if allocs := testing.AllocsPerRun(100, solve); allocs != 0 {
		t.Fatalf("warm CG path allocates %.1f objects per solve, want 0", allocs)
	}
}
