package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestLanczosDiagonalExact(t *testing.T) {
	coo := NewCOO(4, 4)
	for i, v := range []float64{1, 3, 7, 2} {
		_ = coo.Add(i, i, v)
	}
	res, err := Lanczos(coo.ToCSR(), 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 7}
	if len(res.RitzValues) != 4 {
		t.Fatalf("ritz count %d", len(res.RitzValues))
	}
	for i, w := range want {
		if math.Abs(res.RitzValues[i]-w) > 1e-8 {
			t.Fatalf("ritz[%d] = %v, want %v", i, res.RitzValues[i], w)
		}
	}
}

func TestLanczosMatchesDenseEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := 20
	a := randSPDCSR(rng, n)
	lo, hi, err := ExtremalEigsSym(a, n)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := mat.NewEigenSym(a.ToDense(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-eig.Values[0]) > 1e-6*math.Max(1, math.Abs(eig.Values[0])) {
		t.Fatalf("smallest: lanczos %v vs dense %v", lo, eig.Values[0])
	}
	if math.Abs(hi-eig.Values[n-1]) > 1e-6*math.Max(1, eig.Values[n-1]) {
		t.Fatalf("largest: lanczos %v vs dense %v", hi, eig.Values[n-1])
	}
}

func TestLanczosEarlyTermination(t *testing.T) {
	// Identity: the first step already spans an invariant subspace.
	coo := NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		_ = coo.Add(i, i, 2)
	}
	res, err := Lanczos(coo.ToCSR(), 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Fatalf("steps = %d, want 1 for scaled identity", res.Steps)
	}
	if math.Abs(res.RitzValues[0]-2) > 1e-12 {
		t.Fatalf("ritz = %v", res.RitzValues)
	}
}

func TestLanczosDeflation(t *testing.T) {
	// Diagonal matrix diag(5,1,1); deflating e1 must remove eigenvalue 5.
	coo := NewCOO(3, 3)
	_ = coo.Add(0, 0, 5)
	_ = coo.Add(1, 1, 1)
	_ = coo.Add(2, 2, 1)
	e1 := []float64{1, 0, 0}
	res, err := Lanczos(coo.ToCSR(), 3, nil, [][]float64{e1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.RitzValues {
		if math.Abs(v-5) < 1e-6 {
			t.Fatalf("deflated eigenvalue reappeared: %v", res.RitzValues)
		}
	}
}

func TestLanczosErrors(t *testing.T) {
	rect := NewCOO(2, 3).ToCSR()
	if _, err := Lanczos(rect, 2, nil, nil); !errors.Is(err, ErrShape) {
		t.Fatal("rectangular must error")
	}
	sq := NewCOO(3, 3).ToCSR()
	if _, err := Lanczos(sq, 0, nil, nil); !errors.Is(err, ErrShape) {
		t.Fatal("k=0 must error")
	}
	if _, err := Lanczos(sq, 2, []float64{1}, nil); !errors.Is(err, ErrShape) {
		t.Fatal("bad v0 must error")
	}
	if _, err := Lanczos(sq, 2, nil, [][]float64{{1}}); !errors.Is(err, ErrShape) {
		t.Fatal("bad deflation vector must error")
	}
}

func TestLanczosKClamped(t *testing.T) {
	coo := NewCOO(2, 2)
	_ = coo.Add(0, 0, 1)
	_ = coo.Add(1, 1, 2)
	res, err := Lanczos(coo.ToCSR(), 100, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 2 {
		t.Fatalf("steps = %d, want <= n", res.Steps)
	}
}
