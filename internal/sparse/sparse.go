// Package sparse provides the sparse-matrix substrate used by the graph and
// solver layers: a COO builder, an immutable CSR matrix with fast
// matrix-vector products, and classic iterative solvers (conjugate gradient,
// Jacobi, Gauss–Seidel) for the symmetric positive definite systems that
// arise from graph Laplacians.
package sparse

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
)

var (
	// ErrShape is returned when operand dimensions are incompatible.
	ErrShape = errors.New("sparse: dimension mismatch")
	// ErrNotConverged is returned when an iterative solver exhausts its
	// iteration budget.
	ErrNotConverged = errors.New("sparse: iteration did not converge")
	// ErrZeroDiagonal is returned by solvers that require a nonzero diagonal.
	ErrZeroDiagonal = errors.New("sparse: zero diagonal entry")
	// ErrIndex is returned for out-of-range coordinates.
	ErrIndex = errors.New("sparse: index out of range")
)

// COO is a coordinate-format builder for sparse matrices. Duplicate entries
// are summed when converting to CSR.
type COO struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewCOO returns an empty r-by-c COO builder.
func NewCOO(r, c int) *COO {
	return &COO{rows: r, cols: c}
}

// Rows returns the number of rows.
func (a *COO) Rows() int { return a.rows }

// Cols returns the number of columns.
func (a *COO) Cols() int { return a.cols }

// NNZ returns the number of stored entries (duplicates counted separately).
func (a *COO) NNZ() int { return len(a.v) }

// Add appends the entry (i, j, v). Zero values are skipped.
func (a *COO) Add(i, j int, v float64) error {
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		return fmt.Errorf("sparse: Add(%d,%d) outside %dx%d: %w", i, j, a.rows, a.cols, ErrIndex)
	}
	if v == 0 {
		return nil
	}
	a.ri = append(a.ri, i)
	a.ci = append(a.ci, j)
	a.v = append(a.v, v)
	return nil
}

// AddSym appends (i, j, v) and, when i != j, (j, i, v).
func (a *COO) AddSym(i, j int, v float64) error {
	if err := a.Add(i, j, v); err != nil {
		return err
	}
	if i != j {
		return a.Add(j, i, v)
	}
	return nil
}

// ToCSR compiles the builder into an immutable CSR matrix, summing duplicate
// coordinates.
func (a *COO) ToCSR() *CSR {
	nnz := len(a.v)
	order := make([]int, nnz)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ix, iy := order[x], order[y]
		if a.ri[ix] != a.ri[iy] {
			return a.ri[ix] < a.ri[iy]
		}
		return a.ci[ix] < a.ci[iy]
	})

	indptr := make([]int, a.rows+1)
	indices := make([]int, 0, nnz)
	data := make([]float64, 0, nnz)
	prevRow, prevCol := -1, -1
	for _, k := range order {
		r, c, v := a.ri[k], a.ci[k], a.v[k]
		if r == prevRow && c == prevCol {
			data[len(data)-1] += v
			continue
		}
		indices = append(indices, c)
		data = append(data, v)
		indptr[r+1]++
		prevRow, prevCol = r, c
	}
	for i := 0; i < a.rows; i++ {
		indptr[i+1] += indptr[i]
	}
	return &CSR{rows: a.rows, cols: a.cols, indptr: indptr, indices: indices, data: data}
}

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	indptr     []int
	indices    []int
	data       []float64
}

// NewCSR wraps pre-assembled CSR storage without copying. It validates the
// structure: indptr must be a non-decreasing length-(rows+1) prefix-sum
// starting at 0, indices/data must match its final value, and each row's
// column indices must be strictly increasing and in range. Builders that
// assemble rows in parallel (e.g. the graph constructors) use this to skip
// the COO sort round-trip. The caller must not mutate the slices afterwards.
func NewCSR(rows, cols int, indptr, indices []int, data []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: NewCSR %dx%d: %w", rows, cols, ErrShape)
	}
	if len(indptr) != rows+1 || indptr[0] != 0 {
		return nil, fmt.Errorf("sparse: NewCSR indptr length %d (rows=%d): %w", len(indptr), rows, ErrShape)
	}
	nnz := indptr[rows]
	if len(indices) != nnz || len(data) != nnz {
		return nil, fmt.Errorf("sparse: NewCSR nnz mismatch indptr=%d indices=%d data=%d: %w",
			nnz, len(indices), len(data), ErrShape)
	}
	for i := 0; i < rows; i++ {
		lo, hi := indptr[i], indptr[i+1]
		if lo > hi {
			return nil, fmt.Errorf("sparse: NewCSR row %d has negative extent: %w", i, ErrShape)
		}
		prev := -1
		for k := lo; k < hi; k++ {
			j := indices[k]
			if j <= prev || j >= cols {
				return nil, fmt.Errorf("sparse: NewCSR row %d column %d (prev %d, cols %d): %w",
					i, j, prev, cols, ErrIndex)
			}
			prev = j
		}
	}
	return &CSR{rows: rows, cols: cols, indptr: indptr, indices: indices, data: data}, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// Dims returns the row and column counts.
func (m *CSR) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.data) }

// At returns the element at (i, j); zero when the entry is not stored.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(ErrIndex)
	}
	lo, hi := m.indptr[i], m.indptr[i+1]
	k := lo + sort.SearchInts(m.indices[lo:hi], j)
	if k < hi && m.indices[k] == j {
		return m.data[k]
	}
	return 0
}

// RowNNZ returns the stored column indices and values of row i, aliasing the
// internal storage. Callers must not mutate the returned slices.
func (m *CSR) RowNNZ(i int) (cols []int, vals []float64) {
	lo, hi := m.indptr[i], m.indptr[i+1]
	return m.indices[lo:hi], m.data[lo:hi]
}

// MulVec returns m*x.
func (m *CSR) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, ErrShape
	}
	out := make([]float64, m.rows)
	if err := m.MulVecTo(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecTo computes dst = m*x without allocating. dst must not alias x.
func (m *CSR) MulVecTo(dst, x []float64) error {
	return m.MulVecToWorkers(dst, x, 1)
}

// Below these sizes a parallel SpMV loses to the serial loop: the per-call
// goroutine handoff costs more than the row sweep it saves (benchmarked at
// ~0.98x for the CG inner loop on small systems), so MulVecToWorkers runs
// such matrices inline regardless of the requested worker count. The result
// is bitwise-identical either way — only scheduling changes.
const (
	mulVecMinParRows = 4096
	mulVecMinParNNZ  = 1 << 16
)

// MulVecToWorkers computes dst = m*x with rows distributed across the given
// worker count (workers <= 0 selects GOMAXPROCS, 1 runs serially inline;
// matrices below a size threshold run serially regardless, where the
// goroutine handoff would cost more than it saves). Each row's dot product
// is accumulated in the same left-to-right order as the serial path, so the
// result is bitwise-identical for every worker count. dst must not alias x.
// This is the inner loop of CG, label propagation, and the Lanczos spectral
// routines.
func (m *CSR) MulVecToWorkers(dst, x []float64, workers int) error {
	if len(x) != m.cols || len(dst) != m.rows {
		return ErrShape
	}
	if workers == 1 || (m.rows < mulVecMinParRows && m.NNZ() < mulVecMinParNNZ) {
		// Direct serial loop: identical arithmetic to the parallel path, but
		// with no closure so the CG/PCG inner loop stays allocation-free.
		for i := 0; i < m.rows; i++ {
			a, b := m.indptr[i], m.indptr[i+1]
			var s float64
			for k := a; k < b; k++ {
				s += m.data[k] * x[m.indices[k]]
			}
			dst[i] = s
		}
		return nil
	}
	parallel.For(workers, m.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a, b := m.indptr[i], m.indptr[i+1]
			var s float64
			for k := a; k < b; k++ {
				s += m.data[k] * x[m.indices[k]]
			}
			dst[i] = s
		}
	})
	return nil
}

// Diag returns the main diagonal as a dense slice.
func (m *CSR) Diag() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	out := make([]float64, n)
	m.DiagTo(out)
	return out
}

// DiagTo fills dst with the main diagonal without allocating. dst must have
// length min(rows, cols); a wrong length panics like slice indexing.
func (m *CSR) DiagTo(dst []float64) {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	if len(dst) != n {
		panic(ErrShape)
	}
	for i := 0; i < n; i++ {
		dst[i] = m.At(i, i)
	}
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.indptr[i], m.indptr[i+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += m.data[k]
		}
		out[i] = s
	}
	return out
}

// ToDense expands the matrix into a dense mat.Dense.
func (m *CSR) ToDense() *mat.Dense {
	d := mat.NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.indptr[i], m.indptr[i+1]
		for k := lo; k < hi; k++ {
			d.Set(i, m.indices[k], m.data[k])
		}
	}
	return d
}

// FromDense builds a CSR matrix from a dense one, dropping entries with
// |v| <= dropTol.
func FromDense(d *mat.Dense, dropTol float64) *CSR {
	r, c := d.Dims()
	coo := NewCOO(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := d.At(i, j)
			if v > dropTol || v < -dropTol {
				// Error is impossible: indices are in range by construction.
				_ = coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}

// Transpose returns the transpose as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	coo := NewCOO(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		lo, hi := m.indptr[i], m.indptr[i+1]
		for k := lo; k < hi; k++ {
			_ = coo.Add(m.indices[k], i, m.data[k])
		}
	}
	return coo.ToCSR()
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	t := m.Transpose()
	if len(t.data) != len(m.data) {
		return false
	}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.indptr[i], m.indptr[i+1]
		tlo := t.indptr[i]
		if t.indptr[i+1]-tlo != hi-lo {
			return false
		}
		for k := lo; k < hi; k++ {
			tk := tlo + (k - lo)
			if m.indices[k] != t.indices[tk] {
				return false
			}
			diff := m.data[k] - t.data[tk]
			if diff > tol || diff < -tol {
				return false
			}
		}
	}
	return true
}
