package sparse

import (
	"math"
	"testing"
)

// TestGaussSeidelWorkersConvergesToSerialFixedPoint: every worker count
// runs a different (but fixed) update schedule, so iterates differ — the
// solutions must still agree within tolerance.
func TestGaussSeidelWorkersConvergesToSerialFixedPoint(t *testing.T) {
	a, b := zeroAllocSystem(t)
	serial, _, err := GaussSeidel(a, b, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		x, _, err := GaussSeidelWorkers(a, b, 1e-12, 100000, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range x {
			if d := math.Abs(x[i] - serial[i]); d > 1e-9*(1+math.Abs(serial[i])) {
				t.Fatalf("workers=%d differs from serial at %d: %g vs %g", w, i, x[i], serial[i])
			}
		}
	}
}

// TestGaussSeidelWorkersDeterministicPerCount: any fixed worker count is a
// pure function of the input — rerunning must reproduce bit-identical
// output.
func TestGaussSeidelWorkersDeterministicPerCount(t *testing.T) {
	a, b := zeroAllocSystem(t)
	for _, w := range []int{1, 2, 4} {
		x1, r1, err := GaussSeidelWorkers(a, b, 1e-12, 100000, w)
		if err != nil {
			t.Fatal(err)
		}
		x2, r2, err := GaussSeidelWorkers(a, b, 1e-12, 100000, w)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Iterations != r2.Iterations {
			t.Fatalf("workers=%d iteration counts differ: %d vs %d", w, r1.Iterations, r2.Iterations)
		}
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("workers=%d rerun differs at %d", w, i)
			}
		}
	}
}

// TestGaussSeidelSerialPathPinned: the one-worker entry points all run the
// historical serial sweep bit-for-bit.
func TestGaussSeidelSerialPathPinned(t *testing.T) {
	a, b := zeroAllocSystem(t)
	x1, _, err := GaussSeidel(a, b, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := GaussSeidelWorkers(a, b, 1e-12, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	x3, _, err := GaussSeidelCtx(nil, a, b, 1e-12, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] || x1[i] != x3[i] {
			t.Fatalf("serial entry points diverge at %d", i)
		}
	}
}
