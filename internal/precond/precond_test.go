package precond_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/precond"
	"repro/internal/sparse"
)

// tridiag builds the SPD tridiagonal [-1, d, -1] system of size n.
func tridiag(t *testing.T, n int, d float64) *sparse.CSR {
	t.Helper()
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		if err := coo.Add(i, i, d); err != nil {
			t.Fatal(err)
		}
		if i+1 < n {
			if err := coo.AddSym(i, i+1, -1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return coo.ToCSR()
}

// gridShifted builds the side×side 5-point grid Laplacian plus a small
// diagonal shift — the classic ill-conditioned SPD test system (condition
// number grows like side²/shift).
func gridShifted(t *testing.T, side int, shift float64) *sparse.CSR {
	t.Helper()
	n := side * side
	coo := sparse.NewCOO(n, n)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := r*side + c
			if c+1 < side {
				if err := coo.AddSym(i, i+1, -1); err != nil {
					t.Fatal(err)
				}
			}
			if r+1 < side {
				if err := coo.AddSym(i, i+side, -1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Diagonal: neighbour count plus the shift.
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := r*side + c
			d := shift
			if c > 0 {
				d++
			}
			if c+1 < side {
				d++
			}
			if r > 0 {
				d++
			}
			if r+1 < side {
				d++
			}
			if err := coo.Add(i, i, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	return coo.ToCSR()
}

func rhsFor(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(2*i + 1))
	}
	return b
}

func TestJacobiApply(t *testing.T) {
	a := tridiag(t, 8, 4)
	j, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	r := rhsFor(8)
	dst := make([]float64, 8)
	j.Apply(dst, r)
	for i := range dst {
		if want := r[i] / 4; dst[i] != want {
			t.Fatalf("Apply[%d] = %g, want %g", i, dst[i], want)
		}
	}
	if j.Name() != "jacobi" {
		t.Fatalf("name = %q", j.Name())
	}
}

// TestIC0ExactOnTridiagonal: a tridiagonal matrix's Cholesky factor has no
// fill, so IC(0) is the exact factorization and PCG must converge in one
// iteration.
func TestIC0ExactOnTridiagonal(t *testing.T) {
	a := tridiag(t, 256, 2.5)
	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Name() != "ic0" {
		t.Fatalf("name = %q", ic.Name())
	}
	b := rhsFor(256)
	x, res, err := sparse.PCG(a, b, sparse.PCGOptions{
		CGOptions: sparse.CGOptions{Tol: 1e-12},
		M:         ic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("exact IC(0) took %d iterations, want <= 2", res.Iterations)
	}
	want, err := mat.SolveSPD(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, dense reference %g", i, x[i], want[i])
		}
	}
}

// TestIC0PCGMatchesDenseReference verifies the preconditioned solve against
// the dense factorization on an ill-conditioned grid system, and that IC(0)
// needs no more iterations than Jacobi there.
func TestIC0PCGMatchesDenseReference(t *testing.T) {
	a := gridShifted(t, 20, 1e-4)
	n := a.Rows()
	b := rhsFor(n)

	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	x, icRes, err := sparse.PCG(a, b, sparse.PCGOptions{
		CGOptions: sparse.CGOptions{Tol: 1e-10},
		M:         ic,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mat.SolveSPD(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	// The shifted grid is near-singular, so compare through the residual
	// scale rather than entrywise against an equally inexact reference.
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > 1e-4*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, dense reference %g", i, x[i], want[i])
		}
	}

	_, jacRes, err := sparse.CG(a, b, sparse.CGOptions{Tol: 1e-10, Precondition: true})
	if err != nil {
		t.Fatal(err)
	}
	if icRes.Iterations > jacRes.Iterations {
		t.Fatalf("IC(0) took %d iterations, Jacobi %d — no win on the ill-conditioned grid",
			icRes.Iterations, jacRes.Iterations)
	}
}

// TestIC0UpdateMatchesFreshFactorization: the numeric refresh used by λ
// sweeps must agree bit-for-bit with factoring the new values from scratch.
func TestIC0UpdateMatchesFreshFactorization(t *testing.T) {
	a1 := tridiag(t, 64, 3)
	a2 := tridiag(t, 64, 5) // same pattern, different values
	ic, err := precond.NewIC0(a1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ic.Update(a2); err != nil {
		t.Fatal(err)
	}
	fresh, err := precond.NewIC0(a2)
	if err != nil {
		t.Fatal(err)
	}
	r := rhsFor(64)
	got := make([]float64, 64)
	want := make([]float64, 64)
	ic.Apply(got, r)
	fresh.Apply(want, r)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("updated factor differs from fresh at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestAutoFallsBackOnBreakdown: an indefinite matrix breaks the incomplete
// factorization; Auto must degrade to Jacobi rather than fail.
func TestAutoFallsBackOnBreakdown(t *testing.T) {
	coo := sparse.NewCOO(3, 3)
	for _, e := range []struct {
		i, j int
		v    float64
	}{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}} {
		if err := coo.Add(e.i, e.j, e.v); err != nil {
			t.Fatal(err)
		}
	}
	// Off-diagonal mass far exceeding the diagonal: the first pivot update
	// drives diag² negative.
	if err := coo.AddSym(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	a := coo.ToCSR()
	if _, err := precond.NewIC0(a); !errors.Is(err, precond.ErrBreakdown) {
		t.Fatalf("NewIC0 = %v, want ErrBreakdown", err)
	}
	m, err := precond.Auto(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "jacobi" {
		t.Fatalf("Auto fell back to %q, want jacobi", m.Name())
	}
}

func TestAutoRejectsZeroDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	if err := coo.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := coo.AddSym(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := precond.Auto(coo.ToCSR()); err == nil {
		t.Fatal("Auto accepted a zero-diagonal matrix")
	}
}

// TestIC0PCGDeterministicAcrossWorkers: the preconditioned solve must be
// bitwise-identical for every worker count, including sizes where SpMV
// takes the parallel path.
func TestIC0PCGDeterministicAcrossWorkers(t *testing.T) {
	a := tridiag(t, 5000, 2.0001) // above the serial-SpMV cutoff
	b := rhsFor(5000)
	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	var ref []float64
	for _, w := range []int{1, 2, 3, 8} {
		x, _, err := sparse.PCG(a, b, sparse.PCGOptions{
			CGOptions: sparse.CGOptions{Tol: 1e-10, Workers: w},
			M:         ic,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = x
			continue
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("workers=%d differs from workers=1 at %d", w, i)
			}
		}
	}
}

// TestZeroAllocSolveIC0 extends the zero-allocation contract to the
// external-preconditioner path: warm PCG with a prebuilt IC(0) factor, a
// held workspace, and a destination buffer must not allocate.
func TestZeroAllocSolveIC0(t *testing.T) {
	a := tridiag(t, 512, 2.5)
	b := rhsFor(512)
	ic, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ws := sparse.NewWorkspace()
	dst := make([]float64, 512)
	solve := func() {
		_, _, err := sparse.PCG(a, b, sparse.PCGOptions{
			CGOptions: sparse.CGOptions{Tol: 1e-10, X0: dst, Workers: 1},
			M:         ic,
			Dst:       dst,
			Ws:        ws,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	solve()
	if allocs := testing.AllocsPerRun(100, solve); allocs != 0 {
		t.Fatalf("warm IC(0)-PCG path allocates %.1f objects per solve, want 0", allocs)
	}
}
