// Package precond provides preconditioners for the conjugate-gradient
// solves at the heart of both paper criteria: the hard system D22−W22 and
// the soft system V+λL are symmetric positive definite M-matrices, and on
// the ill-conditioned regimes the paper studies (small bandwidth h_n,
// weakly connected graphs, large λ) unpreconditioned CG iteration counts
// blow up. Jacobi scaling is the cheap always-works baseline; zero-fill
// incomplete Cholesky IC(0) typically cuts iterations several-fold at the
// cost of one sparse triangular factorization.
//
// Every implementation satisfies sparse.Preconditioner, applies
// deterministically (the PCG bitwise-reproducibility contract extends
// through Apply), and is safe for repeated Apply calls with zero heap
// allocation once constructed. Instances are not goroutine-safe: IC(0)
// keeps an internal substitution scratch vector.
package precond

import (
	"errors"
	"math"

	"repro/internal/sparse"
)

var (
	// ErrBreakdown is returned by NewIC0 when the incomplete factorization
	// hits a non-positive or non-finite pivot. The system is then too far
	// from an M-matrix for zero-fill factorization; callers fall back to
	// Jacobi (Auto does so automatically).
	ErrBreakdown = errors.New("precond: incomplete Cholesky breakdown")
	// ErrShape is returned for non-square or mismatched operands.
	ErrShape = errors.New("precond: dimension mismatch")
	// ErrZeroDiagonal is returned when a diagonal entry is zero, which rules
	// out both diagonal scaling and IC(0).
	ErrZeroDiagonal = errors.New("precond: zero diagonal entry")
)

// Preconditioner is the package's extended interface: sparse.Preconditioner
// plus an identity for diagnostics reports.
type Preconditioner interface {
	sparse.Preconditioner
	// Name identifies the preconditioner ("jacobi", "ic0") in solve traces.
	Name() string
}

// Jacobi is diagonal (point) scaling: M = diag(A), Apply computes
// dst[i] = r[i] / a_ii. It is exactly the preconditioner the historical
// CG Precondition flag applied, bit for bit.
type Jacobi struct {
	invDiag []float64
}

// NewJacobi builds the diagonal preconditioner for a square matrix.
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	n, c := a.Dims()
	if n != c {
		return nil, ErrShape
	}
	j := &Jacobi{invDiag: make([]float64, n)}
	if err := j.Update(a); err != nil {
		return nil, err
	}
	return j, nil
}

// Update recomputes the diagonal from a matrix of the same size, reusing
// storage. Sweeps over a fixed sparsity pattern use it to track changing
// values without reallocating.
func (j *Jacobi) Update(a *sparse.CSR) error {
	n, c := a.Dims()
	if n != c || n != len(j.invDiag) {
		return ErrShape
	}
	a.DiagTo(j.invDiag)
	for i, d := range j.invDiag {
		if d == 0 {
			return ErrZeroDiagonal
		}
		j.invDiag[i] = 1 / d
	}
	return nil
}

// Apply computes dst = D⁻¹ r.
func (j *Jacobi) Apply(dst, r []float64) {
	for i := range dst {
		dst[i] = j.invDiag[i] * r[i]
	}
}

// Name implements Preconditioner.
func (j *Jacobi) Name() string { return "jacobi" }

// IC0 is the zero-fill incomplete Cholesky preconditioner: a lower
// triangular factor L with exactly the sparsity of tril(A) such that
// L Lᵀ ≈ A, applied as two sparse triangular solves. For the
// diagonally-dominant M-matrices of the graph criteria the factorization
// exists (no breakdown) and clusters the preconditioned spectrum far more
// tightly than diagonal scaling.
type IC0 struct {
	n      int
	rowptr []int     // strict lower-triangular row extents
	cols   []int     // strict lower-triangular column indices, ascending
	val    []float64 // strict lower-triangular factor values
	diag   []float64 // L diagonal
	y      []float64 // substitution scratch, reused across Apply calls
	// Transpose copy of the factor (Lᵀ as upper-triangular CSR) for the
	// backward solve: a row-gather sweep over Lᵀ touches memory forward
	// and sequentially, where the row-scatter sweep over L it replaces
	// read-modified-wrote the scratch vector at random offsets.
	trowptr []int
	tcols   []int
	tval    []float64
	tmap    []int // lower entry k → its slot in tval, refreshed by Update
}

// NewIC0 factors a symmetric positive definite CSR matrix. It returns
// ErrBreakdown when a pivot is non-positive or non-finite (the zero-fill
// constraint discarded too much), in which case callers should fall back to
// Jacobi scaling.
func NewIC0(a *sparse.CSR) (*IC0, error) {
	n, c := a.Dims()
	if n != c {
		return nil, ErrShape
	}
	ic := &IC0{
		n:      n,
		rowptr: make([]int, n+1),
		diag:   make([]float64, n),
		y:      make([]float64, n),
	}
	nnzLower := 0
	for i := 0; i < n; i++ {
		cols, _ := a.RowNNZ(i)
		for _, j := range cols {
			if j < i {
				nnzLower++
			}
		}
	}
	ic.cols = make([]int, 0, nnzLower)
	ic.val = make([]float64, nnzLower)
	for i := 0; i < n; i++ {
		cols, _ := a.RowNNZ(i)
		for _, j := range cols {
			if j < i {
				ic.cols = append(ic.cols, j)
			}
		}
		ic.rowptr[i+1] = len(ic.cols)
	}
	// Transpose pattern: row j of Lᵀ collects every lower entry (i, j) in
	// ascending i (the outer loop order), so tcols stays sorted.
	ic.trowptr = make([]int, n+1)
	for _, j := range ic.cols {
		ic.trowptr[j+1]++
	}
	for i := 0; i < n; i++ {
		ic.trowptr[i+1] += ic.trowptr[i]
	}
	next := make([]int, n)
	copy(next, ic.trowptr[:n])
	ic.tcols = make([]int, len(ic.cols))
	ic.tval = make([]float64, len(ic.cols))
	ic.tmap = make([]int, len(ic.cols))
	for i := 0; i < n; i++ {
		for k := ic.rowptr[i]; k < ic.rowptr[i+1]; k++ {
			j := ic.cols[k]
			p := next[j]
			next[j]++
			ic.tcols[p] = i
			ic.tmap[k] = p
		}
	}
	if err := ic.Update(a); err != nil {
		return nil, err
	}
	return ic, nil
}

// Update refactors from a matrix with the same sparsity pattern, reusing
// the symbolic structure and all storage. λ sweeps call it once per λ.
func (ic *IC0) Update(a *sparse.CSR) error {
	n, c := a.Dims()
	if n != c || n != ic.n {
		return ErrShape
	}
	for i := 0; i < n; i++ {
		cols, vals := a.RowNNZ(i)
		aDiag := math.NaN()
		at := ic.rowptr[i]
		for k, j := range cols {
			switch {
			case j < i:
				if at >= ic.rowptr[i+1] || ic.cols[at] != j {
					return ErrShape // pattern drifted from the symbolic phase
				}
				// L[i][j] = (A[i][j] − Σ_{k<j} L[i][k]·L[j][k]) / L[j][j]
				ic.val[at] = (vals[k] - ic.sparseDot(i, j)) / ic.diag[j]
				at++
			case j == i:
				aDiag = vals[k]
			}
		}
		if at != ic.rowptr[i+1] {
			return ErrShape
		}
		var sq float64
		for k := ic.rowptr[i]; k < ic.rowptr[i+1]; k++ {
			sq += ic.val[k] * ic.val[k]
		}
		piv := aDiag - sq
		if math.IsNaN(piv) || math.IsInf(piv, 0) || piv <= 0 {
			return ErrBreakdown
		}
		ic.diag[i] = math.Sqrt(piv)
	}
	for k, p := range ic.tmap {
		ic.tval[p] = ic.val[k]
	}
	return nil
}

// sparseDot returns Σ_k L[i][k]·L[j][k] over k < j, the merged product of
// two ascending-column factor rows.
func (ic *IC0) sparseDot(i, j int) float64 {
	pi, pj := ic.rowptr[i], ic.rowptr[j]
	ei, ej := ic.rowptr[i+1], ic.rowptr[j+1]
	var s float64
	for pi < ei && pj < ej {
		ci, cj := ic.cols[pi], ic.cols[pj]
		if ci >= j {
			break
		}
		switch {
		case ci == cj:
			s += ic.val[pi] * ic.val[pj]
			pi++
			pj++
		case ci < cj:
			pi++
		default:
			pj++
		}
	}
	return s
}

// Apply solves L Lᵀ dst = r by forward then backward substitution. It
// allocates nothing; the scratch vector persists on the receiver.
func (ic *IC0) Apply(dst, r []float64) {
	n := ic.n
	y := ic.y
	// Forward: L y = r.
	for i := 0; i < n; i++ {
		s := r[i]
		for k := ic.rowptr[i]; k < ic.rowptr[i+1]; k++ {
			s -= ic.val[k] * y[ic.cols[k]]
		}
		y[i] = s / ic.diag[i]
	}
	// Backward: Lᵀ dst = y, gathering along rows of the transpose copy so
	// every inner loop reads contiguous factor storage.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := ic.trowptr[i]; k < ic.trowptr[i+1]; k++ {
			s -= ic.tval[k] * dst[ic.tcols[k]]
		}
		dst[i] = s / ic.diag[i]
	}
}

// Name implements Preconditioner.
func (ic *IC0) Name() string { return "ic0" }

// Auto builds the strongest preconditioner that applies: IC(0), falling
// back to Jacobi scaling when the incomplete factorization breaks down.
// Shape and zero-diagonal errors are not absorbed — they mean no
// preconditioner of either kind is defined.
func Auto(a *sparse.CSR) (Preconditioner, error) {
	ic, err := NewIC0(a)
	if err == nil {
		return ic, nil
	}
	if !errors.Is(err, ErrBreakdown) {
		return nil, err
	}
	return NewJacobi(a)
}
