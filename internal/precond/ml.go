package precond

import (
	"errors"

	"repro/internal/mat"
	"repro/internal/sparse"
)

// Multilevel (aggregation-AMG) preconditioner. One V-cycle over a
// hierarchy of Galerkin-coarsened operators approximates A⁻¹r far better
// than a single IC(0) solve on the near-singular, large-diameter graph
// systems where IC(0)-PCG iteration counts still grow with n: the coarse
// levels propagate corrections across the whole graph in one Apply.
//
// The hierarchy uses piecewise-constant prolongation P over node
// aggregates (restriction Pᵀ sums fine residuals into their aggregate,
// prolongation copies the coarse correction back to every member), the
// Galerkin product A_c = PᵀAP, damped Jacobi smoothing, and a dense
// Cholesky factorization at the coarsest level. With one pre- and one
// post-smoothing sweep the V-cycle operator is symmetric, and for the
// diagonally dominant M-matrices of both paper criteria ρ(D⁻¹A) ≤ 2, so
// the ω = 0.5 damping keeps the smoother A-convergent and the
// preconditioner positive definite — the PCG contract.

const (
	// mlOmega is the damped-Jacobi smoothing weight. Any ω < 2/ρ(D⁻¹A)
	// keeps the V-cycle SPD; 0.5 is safe for every diagonally dominant
	// system without estimating ρ.
	mlOmega = 0.5
	// mlCoarseMax is the size at which coarsening stops and the level is
	// factored densely.
	mlCoarseMax = 400
	// mlMaxLevels caps the hierarchy depth.
	mlMaxLevels = 12
	// mlStallRatio: a greedy-aggregation level that shrinks the unknown
	// count by less than this factor is not paying for itself; stop and
	// factor what we have (if small enough).
	mlStallRatio = 0.7
)

// ErrNoHierarchy is returned by NewML when the matrix graph does not
// coarsen (e.g. near-diagonal systems) and the stalled level is too large
// to factor densely. Callers fall back to IC(0)/Jacobi.
var ErrNoHierarchy = errors.New("precond: no usable multilevel hierarchy")

// mlLevel is one fine level of the hierarchy plus its transfer to the
// next-coarser one.
type mlLevel struct {
	a       *sparse.CSR
	invDiag []float64 // 1/diag(a), for the damped Jacobi smoother
	agg     []int32   // fine index -> coarse aggregate id
	nc      int       // coarse unknown count
	// Per-level scratch, sized at construction so Apply never allocates.
	x, work, rc, ec []float64
}

// ML is the multilevel preconditioner. Apply runs one symmetric V-cycle.
// Not goroutine-safe: the per-level scratch is shared across calls.
type ML struct {
	levels []*mlLevel    // finest first; empty when n <= mlCoarseMax
	coarse *mat.Cholesky // dense factorization of the coarsest operator
	n      int
}

// NewML builds the hierarchy by greedy matrix-graph aggregation: scanning
// unknowns in index order, each unaggregated node claims itself and its
// unaggregated neighbors as one aggregate. The scan order makes the
// hierarchy a pure function of the sparsity pattern, so Apply is
// deterministic and the PCG bitwise contract holds.
func NewML(a *sparse.CSR) (*ML, error) {
	return buildML(a, func(lvl *sparse.CSR) ([]int32, int, bool) {
		agg, nc := greedyAggregate(lvl)
		n, _ := lvl.Dims()
		return agg, nc, float64(nc) <= mlStallRatio*float64(n)
	})
}

// NewMLAssigned builds the hierarchy from precomputed aggregate
// assignments — one slice per coarsening step, where assign[l] maps a
// level-l unknown to its level-(l+1) aggregate id. The approx package
// feeds this with the KD-tree coarsening so the preconditioner and the
// Nyström anchors share one spatial hierarchy. Levels beyond the point
// where the operator reaches the dense-solve size are ignored.
func NewMLAssigned(a *sparse.CSR, assign [][]int32) (*ML, error) {
	step := 0
	return buildML(a, func(lvl *sparse.CSR) ([]int32, int, bool) {
		n, _ := lvl.Dims()
		if step >= len(assign) || len(assign[step]) != n {
			return nil, 0, false
		}
		cur := assign[step]
		step++
		nc := 0
		for _, id := range cur {
			if int(id) >= nc {
				nc = int(id) + 1
			}
		}
		return cur, nc, nc < n
	})
}

// buildML assembles the level chain, asking next for each level's
// aggregation (returning ok=false to stop coarsening).
func buildML(a *sparse.CSR, next func(*sparse.CSR) ([]int32, int, bool)) (*ML, error) {
	n, c := a.Dims()
	if n != c {
		return nil, ErrShape
	}
	m := &ML{n: n}
	lvl := a
	for depth := 0; ; depth++ {
		ln, _ := lvl.Dims()
		if ln <= mlCoarseMax || depth >= mlMaxLevels {
			break
		}
		agg, nc, ok := next(lvl)
		if !ok {
			if ln > 4*mlCoarseMax {
				return nil, ErrNoHierarchy
			}
			break
		}
		level := &mlLevel{
			a:    lvl,
			agg:  agg,
			nc:   nc,
			x:    make([]float64, ln),
			work: make([]float64, ln),
			rc:   make([]float64, nc),
			ec:   make([]float64, nc),
		}
		level.invDiag = make([]float64, ln)
		lvl.DiagTo(level.invDiag)
		for i, d := range level.invDiag {
			if d == 0 {
				return nil, ErrZeroDiagonal
			}
			level.invDiag[i] = 1 / d
		}
		m.levels = append(m.levels, level)
		lvl = galerkin(lvl, agg, nc)
	}
	chol, err := mat.NewCholesky(lvl.ToDense())
	if err != nil {
		return nil, err
	}
	m.coarse = chol
	return m, nil
}

// greedyAggregate partitions the matrix graph: each unaggregated node in
// index order claims itself and its still-unaggregated neighbors.
func greedyAggregate(a *sparse.CSR) (agg []int32, nc int) {
	n, _ := a.Dims()
	agg = make([]int32, n)
	for i := range agg {
		agg[i] = -1
	}
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		id := int32(nc)
		nc++
		agg[i] = id
		cols, _ := a.RowNNZ(i)
		for _, j := range cols {
			if agg[j] < 0 {
				agg[j] = id
			}
		}
	}
	return agg, nc
}

// galerkin computes A_c = PᵀAP for the piecewise-constant prolongation
// over agg: (A_c)[I][J] = Σ_{agg[i]=I, agg[j]=J} A[i][j]. Linear in
// nnz(A) plus the output size, using a marker-based row merge.
func galerkin(a *sparse.CSR, agg []int32, nc int) *sparse.CSR {
	n, _ := a.Dims()
	// Group fine rows by aggregate (counting sort keeps it allocation-lean
	// and deterministic).
	count := make([]int32, nc+1)
	for _, id := range agg {
		count[id+1]++
	}
	for i := 0; i < nc; i++ {
		count[i+1] += count[i]
	}
	members := make([]int32, n)
	fill := make([]int32, nc)
	copy(fill, count[:nc])
	for i, id := range agg {
		members[fill[id]] = int32(i)
		fill[id]++
	}

	indptr := make([]int, nc+1)
	var indices []int
	var data []float64
	acc := make([]float64, nc)
	marker := make([]int32, nc)
	for i := range marker {
		marker[i] = -1
	}
	touched := make([]int32, 0, 64)
	for bigI := 0; bigI < nc; bigI++ {
		touched = touched[:0]
		for _, i := range members[count[bigI]:count[bigI+1]] {
			cols, vals := a.RowNNZ(int(i))
			for k, j := range cols {
				bigJ := agg[j]
				if marker[bigJ] != int32(bigI) {
					marker[bigJ] = int32(bigI)
					acc[bigJ] = 0
					touched = append(touched, bigJ)
				}
				acc[bigJ] += vals[k]
			}
		}
		sortInt32(touched)
		for _, bigJ := range touched {
			indices = append(indices, int(bigJ))
			data = append(data, acc[bigJ])
		}
		indptr[bigI+1] = len(indices)
	}
	csr, err := sparse.NewCSR(nc, nc, indptr, indices, data)
	if err != nil {
		// Unreachable: the merge emits sorted, in-range, deduplicated rows.
		panic(err)
	}
	return csr
}

// Apply runs one symmetric V-cycle: dst ≈ A⁻¹ r. Zero heap allocations.
func (m *ML) Apply(dst, r []float64) {
	m.cycle(0, dst, r)
}

func (m *ML) cycle(depth int, dst, r []float64) {
	if depth == len(m.levels) {
		// SolveTo cannot fail here: the factorization fixed the size.
		if err := m.coarse.SolveTo(dst, r); err != nil {
			panic(err)
		}
		return
	}
	l := m.levels[depth]
	x, work := l.x, l.work
	// Pre-smooth from zero: x = ω D⁻¹ r.
	for i := range x {
		x[i] = mlOmega * l.invDiag[i] * r[i]
	}
	// Coarse-grid correction on the residual r − A x.
	_ = l.a.MulVecTo(work, x)
	for i := range l.rc {
		l.rc[i] = 0
	}
	for i, id := range l.agg {
		l.rc[id] += r[i] - work[i]
	}
	m.cycle(depth+1, l.ec, l.rc)
	for i, id := range l.agg {
		x[i] += l.ec[id]
	}
	// Post-smooth (mirror of the pre-sweep, keeping the cycle symmetric):
	// x += ω D⁻¹ (r − A x).
	_ = l.a.MulVecTo(work, x)
	for i := range x {
		dst[i] = x[i] + mlOmega*l.invDiag[i]*(r[i]-work[i])
	}
}

// Name implements Preconditioner.
func (m *ML) Name() string { return "ml" }

// sortInt32 is insertion sort over the touched-aggregate lists; they are
// neighbor counts, small for the graphs at hand.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
