package precond_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/precond"
	"repro/internal/sparse"
)

// TestMLPCGMatchesDenseReference: multilevel-preconditioned PCG on the
// ill-conditioned shifted grid must reproduce the dense solve and beat the
// Jacobi-preconditioned iteration count — the coarse levels are exactly
// what diagonal scaling lacks there.
func TestMLPCGMatchesDenseReference(t *testing.T) {
	a := gridShifted(t, 40, 1e-4) // n=1600: a real hierarchy, not just the dense tail
	n := a.Rows()
	b := rhsFor(n)

	ml, err := precond.NewML(a)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Name() != "ml" {
		t.Fatalf("name = %q", ml.Name())
	}
	x, mlRes, err := sparse.PCG(a, b, sparse.PCGOptions{
		CGOptions: sparse.CGOptions{Tol: 1e-10},
		M:         ml,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mat.SolveSPD(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > 1e-4*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, dense reference %g", i, x[i], want[i])
		}
	}

	_, jacRes, err := sparse.CG(a, b, sparse.CGOptions{Tol: 1e-10, Precondition: true})
	if err != nil {
		t.Fatal(err)
	}
	if mlRes.Iterations >= jacRes.Iterations {
		t.Fatalf("ML took %d iterations, Jacobi %d — coarse correction bought nothing",
			mlRes.Iterations, jacRes.Iterations)
	}
}

// TestMLSymmetricPositiveDefinite: PCG requires M⁻¹ symmetric positive
// definite. The V-cycle is built to be symmetric (mirrored smoothing
// sweeps, exact coarse solve); verify ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩ and
// ⟨M⁻¹u, u⟩ > 0 on a spread of deterministic vectors.
func TestMLSymmetricPositiveDefinite(t *testing.T) {
	a := gridShifted(t, 25, 1e-3)
	n := a.Rows()
	ml, err := precond.NewML(a)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, n)
	v := make([]float64, n)
	mu := make([]float64, n)
	mv := make([]float64, n)
	for trial := 0; trial < 5; trial++ {
		for i := range u {
			u[i] = math.Cos(float64(i*(trial+1)) + 0.3)
			v[i] = math.Sin(float64(i*(trial+2)) * 0.7)
		}
		ml.Apply(mu, u)
		ml.Apply(mv, v)
		var muv, umv, muu, uu float64
		for i := range u {
			muv += mu[i] * v[i]
			umv += u[i] * mv[i]
			muu += mu[i] * u[i]
			uu += u[i] * u[i]
		}
		if d := math.Abs(muv - umv); d > 1e-10*(1+math.Abs(muv)) {
			t.Fatalf("trial %d: <Mu,v>=%g but <u,Mv>=%g — V-cycle not symmetric", trial, muv, umv)
		}
		if muu <= 0 {
			t.Fatalf("trial %d: <Mu,u> = %g, want > 0 (|u|²=%g)", trial, muu, uu)
		}
	}
}

// TestMLApplyDeterministic: repeated Apply on the same input must be
// bitwise-identical — the PCG reproducibility contract extends through the
// preconditioner.
func TestMLApplyDeterministic(t *testing.T) {
	a := gridShifted(t, 30, 1e-3)
	n := a.Rows()
	ml, err := precond.NewML(a)
	if err != nil {
		t.Fatal(err)
	}
	r := rhsFor(n)
	first := make([]float64, n)
	again := make([]float64, n)
	ml.Apply(first, r)
	ml.Apply(again, r)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("Apply not reproducible at %d: %g vs %g", i, first[i], again[i])
		}
	}
}

// TestMLAssignedPCGConverges: the hierarchy fed by external (spatially
// derived) aggregate assignments must behave like the matrix-based one.
// Pair-aggregation on the tridiagonal chain is the 1D model problem.
func TestMLAssignedPCGConverges(t *testing.T) {
	n := 2048
	a := tridiag(t, n, 2.0001)
	// Two externally supplied levels of pair aggregation: 2048 -> 1024 -> 512,
	// then the dense tail takes over (512 > mlCoarseMax keeps one more greedy
	// stop from mattering: buildML stops when assignments run out).
	var assign [][]int32
	for ln := n; ln > 256; ln /= 2 {
		lvl := make([]int32, ln)
		for i := range lvl {
			lvl[i] = int32(i / 2)
		}
		assign = append(assign, lvl)
	}
	ml, err := precond.NewMLAssigned(a, assign)
	if err != nil {
		t.Fatal(err)
	}
	b := rhsFor(n)
	x, _, err := sparse.PCG(a, b, sparse.PCGOptions{
		CGOptions: sparse.CGOptions{Tol: 1e-10},
		M:         ml,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Residual check against the operator (dense reference at n=2048 is slow).
	ax := make([]float64, n)
	if err := a.MulVecTo(ax, x); err != nil {
		t.Fatal(err)
	}
	var rn, bn float64
	for i := range b {
		d := b[i] - ax[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	if math.Sqrt(rn) > 1e-8*math.Sqrt(bn) {
		t.Fatalf("relative residual %g after ML-assigned PCG", math.Sqrt(rn)/math.Sqrt(bn))
	}
}

// TestMLNoHierarchy: a diagonal system's graph has no edges, so greedy
// aggregation stalls; above the dense-tail cap that must surface as
// ErrNoHierarchy (the auto chain then keeps IC(0)).
func TestMLNoHierarchy(t *testing.T) {
	n := 2000
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		if err := coo.Add(i, i, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := precond.NewML(coo.ToCSR()); !errors.Is(err, precond.ErrNoHierarchy) {
		t.Fatalf("NewML on edgeless graph = %v, want ErrNoHierarchy", err)
	}
}

// TestZeroAllocSolveML extends the zero-allocation contract to the
// multilevel path: warm PCG with a prebuilt hierarchy, a held workspace,
// and a destination buffer must not allocate.
func TestZeroAllocSolveML(t *testing.T) {
	a := gridShifted(t, 32, 1e-3)
	n := a.Rows()
	b := rhsFor(n)
	ml, err := precond.NewML(a)
	if err != nil {
		t.Fatal(err)
	}
	ws := sparse.NewWorkspace()
	dst := make([]float64, n)
	solve := func() {
		_, _, err := sparse.PCG(a, b, sparse.PCGOptions{
			CGOptions: sparse.CGOptions{Tol: 1e-8, X0: dst, Workers: 1},
			M:         ml,
			Dst:       dst,
			Ws:        ws,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	solve()
	if allocs := testing.AllocsPerRun(100, solve); allocs != 0 {
		t.Fatalf("warm ML-PCG path allocates %.1f objects per solve, want 0", allocs)
	}
}
