// Package parallel provides the shared multicore substrate for the hot
// paths of the reproduction: chunked parallel loops over index ranges with
// deterministic work decomposition, worker-count resolution, and panic
// propagation from workers to the caller.
//
// Design rules that every user of this package relies on:
//
//   - Decomposition is a pure function of (n, chunk count), never of timing:
//     Split always produces the same contiguous blocks, and For's chunks are
//     fixed ranges handed to whichever worker is free. A chunk's OUTPUT must
//     therefore depend only on the chunk's input range — never on which
//     worker ran it or in what order — which makes every caller's result
//     bitwise-identical across worker counts.
//   - workers <= 0 resolves to runtime.GOMAXPROCS(0); workers == 1 runs the
//     body inline on the calling goroutine (the serial fallback path, no
//     goroutines spawned).
//   - A panic inside the body is recovered, and the first one observed is
//     re-raised on the calling goroutine after all workers have stopped.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0); positive values are returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Block is a contiguous index range [Lo, Hi).
type Block struct {
	Lo, Hi int
}

// Len returns the block size.
func (b Block) Len() int { return b.Hi - b.Lo }

// Split divides [0, n) into k contiguous near-equal blocks (sizes differ by
// at most one). k is clamped to [1, n] so no block is empty; n == 0 yields
// no blocks. The decomposition depends only on (n, k), so per-block results
// indexed by block id can be merged deterministically.
func Split(n, k int) []Block {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	blocks := make([]Block, k)
	base, rem := n/k, n%k
	lo := 0
	for i := range blocks {
		size := base
		if i < rem {
			size++
		}
		blocks[i] = Block{Lo: lo, Hi: lo + size}
		lo += size
	}
	return blocks
}

// panicError carries a worker panic (with its stack) to the caller.
type panicError struct {
	value any
	stack string
}

func (p *panicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.value, p.stack)
}

// ForBlocks runs fn(i, blocks[i]) for every block, distributing blocks
// across up to `workers` goroutines. Block identity is stable, so fn may
// write per-block results into a slot indexed by i and the caller can merge
// them in block order for a deterministic result. workers == 1 (after
// resolution) runs everything inline in order.
func ForBlocks(workers int, blocks []Block, fn func(i int, b Block)) {
	workers = Workers(workers)
	if len(blocks) == 0 {
		return
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers == 1 {
		for i, b := range blocks {
			fn(i, b)
		}
		return
	}
	var (
		next  int64 = -1
		wg    sync.WaitGroup
		once  sync.Once
		fatal *panicError
	)
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 8192)
				buf = buf[:runtime.Stack(buf, false)]
				once.Do(func() { fatal = &panicError{value: r, stack: string(buf)} })
			}
		}()
		for {
			i := int(atomic.AddInt64(&next, 1))
			if i >= len(blocks) {
				return
			}
			fn(i, blocks[i])
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body()
	}
	wg.Wait()
	if fatal != nil {
		panic(fatal)
	}
}

// ForBlocksCtx is ForBlocks with cooperative cancellation: the context is
// checked before every block is claimed, and once it is done no further
// blocks start. Blocks already in flight run to completion (they own their
// output range; abandoning one midway would leave partial writes), so the
// call returns within one block's worth of work after cancellation. The
// returned error is ctx.Err() if the loop was cut short, nil otherwise.
// Because cancellation only ever skips *trailing* blocks and the caller
// discards the output on error, the deterministic-decomposition contract is
// unaffected on the success path.
func ForBlocksCtx(ctx context.Context, workers int, blocks []Block, fn func(i int, b Block)) error {
	if ctx == nil {
		ForBlocks(workers, blocks, fn)
		return nil
	}
	workers = Workers(workers)
	if len(blocks) == 0 {
		return ctx.Err()
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers == 1 {
		for i, b := range blocks {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i, b)
		}
		return nil
	}
	var (
		next  int64 = -1
		wg    sync.WaitGroup
		once  sync.Once
		fatal *panicError
	)
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 8192)
				buf = buf[:runtime.Stack(buf, false)]
				once.Do(func() { fatal = &panicError{value: r, stack: string(buf)} })
			}
		}()
		for ctx.Err() == nil {
			i := int(atomic.AddInt64(&next, 1))
			if i >= len(blocks) {
				return
			}
			fn(i, blocks[i])
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body()
	}
	wg.Wait()
	if fatal != nil {
		panic(fatal)
	}
	return ctx.Err()
}

// ForCtx is For with cooperative cancellation via ForBlocksCtx; see there
// for the cancellation contract.
func ForCtx(ctx context.Context, workers, n int, fn func(lo, hi int)) error {
	if ctx == nil {
		For(workers, n, fn)
		return nil
	}
	workers = Workers(workers)
	if n <= 0 {
		return ctx.Err()
	}
	const minParallelSpan = 128
	if workers == 1 || n < minParallelSpan {
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(0, n)
		return nil
	}
	blocks := Split(n, workers*4)
	return ForBlocksCtx(ctx, workers, blocks, func(_ int, b Block) { fn(b.Lo, b.Hi) })
}

// For runs fn over [0, n) split into contiguous chunks scheduled across up
// to `workers` goroutines. Chunks are fixed ranges (a deterministic function
// of n and the resolved worker count); fn must only write data owned by its
// range, which makes the overall result independent of scheduling. The
// chunk count exceeds the worker count to absorb per-range load imbalance.
func For(workers, n int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	// Ranges this small never amortize goroutine startup for the row-level
	// work in this repo (O(d) to O(n) per index); run them inline.
	const minParallelSpan = 128
	if workers == 1 || n < minParallelSpan {
		fn(0, n)
		return
	}
	// Over-decompose for load balance; the block layout stays a pure
	// function of (n, workers) so chunk boundaries are reproducible.
	blocks := Split(n, workers*4)
	ForBlocks(workers, blocks, func(_ int, b Block) { fn(b.Lo, b.Hi) })
}
