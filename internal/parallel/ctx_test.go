package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForBlocksCtxNilContextRunsAll(t *testing.T) {
	var ran int64
	blocks := Split(1000, 8)
	if err := ForBlocksCtx(nil, 4, blocks, func(_ int, b Block) {
		atomic.AddInt64(&ran, int64(b.Len()))
	}); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran != 1000 {
		t.Fatalf("ran %d of 1000 indices", ran)
	}
}

func TestForBlocksCtxCanceledSkipsAll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := ForBlocksCtx(ctx, 4, Split(1000, 8), func(_ int, b Block) {
		atomic.AddInt64(&ran, 1)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d blocks ran after cancellation", ran)
	}
}

func TestForBlocksCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	blocks := Split(64, 64)
	err := ForBlocksCtx(ctx, 1, blocks, func(i int, _ Block) {
		if i == 5 {
			cancel()
		}
		atomic.AddInt64(&ran, 1)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got != 6 {
		t.Fatalf("ran %d blocks, want 6 (cancel observed before block 7)", got)
	}
}

func TestForCtxMatchesFor(t *testing.T) {
	const n = 4096
	want := make([]int, n)
	For(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	got := make([]int, n)
	if err := ForCtx(context.Background(), 4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = i * i
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestForCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	if err := ForCtx(ctx, 4, 4096, func(lo, hi int) {
		atomic.AddInt64(&ran, 1)
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d chunks ran after cancellation", ran)
	}
}
