package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestSplitCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 17, 100} {
		for _, k := range []int{-1, 0, 1, 2, 3, 7, 200} {
			blocks := Split(n, k)
			if n == 0 {
				if len(blocks) != 0 {
					t.Fatalf("Split(0,%d) = %v, want empty", k, blocks)
				}
				continue
			}
			want := k
			if want < 1 {
				want = 1
			}
			if want > n {
				want = n
			}
			if len(blocks) != want {
				t.Fatalf("Split(%d,%d) produced %d blocks, want %d", n, k, len(blocks), want)
			}
			lo := 0
			for i, b := range blocks {
				if b.Lo != lo {
					t.Fatalf("Split(%d,%d) block %d starts at %d, want %d", n, k, i, b.Lo, lo)
				}
				if b.Len() < 1 {
					t.Fatalf("Split(%d,%d) block %d empty", n, k, i)
				}
				lo = b.Hi
			}
			if lo != n {
				t.Fatalf("Split(%d,%d) covers [0,%d), want [0,%d)", n, k, lo, n)
			}
			// Near-equal: sizes differ by at most one.
			min, max := n, 0
			for _, b := range blocks {
				if b.Len() < min {
					min = b.Len()
				}
				if b.Len() > max {
					max = b.Len()
				}
			}
			if max-min > 1 {
				t.Fatalf("Split(%d,%d) sizes range [%d,%d]", n, k, min, max)
			}
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	const n = 1237
	for _, workers := range []int{1, 2, 4, 9} {
		hits := make([]int32, n)
		For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForDeterministicOutput(t *testing.T) {
	const n = 501
	run := func(workers int) []float64 {
		out := make([]float64, n)
		For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.5
			}
		})
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d differs at %d", workers, i)
			}
		}
	}
}

func TestForBlocksStableIndexing(t *testing.T) {
	const n = 100
	blocks := Split(n, 8)
	sums := make([]int, len(blocks))
	ForBlocks(4, blocks, func(i int, b Block) {
		s := 0
		for k := b.Lo; k < b.Hi; k++ {
			s += k
		}
		sums[i] = s
	})
	total := 0
	for _, s := range sums {
		total += s
	}
	if want := n * (n - 1) / 2; total != want {
		t.Fatalf("block sums total %d, want %d", total, want)
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				if workers > 1 {
					pe, ok := r.(*panicError)
					if !ok {
						t.Fatalf("workers=%d: recovered %T, want *panicError", workers, r)
					}
					if !strings.Contains(pe.Error(), "boom") {
						t.Fatalf("workers=%d: panic message %q lacks cause", workers, pe.Error())
					}
				}
			}()
			For(workers, 512, func(lo, hi int) {
				if lo >= 256 || workers == 1 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForZeroLength(t *testing.T) {
	called := false
	For(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For called fn on empty range")
	}
	ForBlocks(4, nil, func(int, Block) { called = true })
	if called {
		t.Fatal("ForBlocks called fn on empty block list")
	}
}
